"""Dense integer-coded automata kernel: the engine's hot-path substrate.

The legacy :class:`~repro.automata.dfa.DFA` stores arbitrary hashable
states in dict-of-dicts transition tables.  That representation is ideal
for *building* automata (convolution columns, subset states, product
pairs are all naturally hashable) but terrible for *running* the chained
product / determinize / minimize pipelines every RC(S_reg) query bottoms
out in: every step is two dict lookups, every ``completed()`` is a full
copy, and every binary product is materialized even when the caller only
asks ``is_empty``.

This module is the dense counterpart:

* :class:`SymbolTable` interns alphabet symbols to contiguous ints
  (sorted by ``repr``, matching the legacy canonical symbol order, so
  dense and legacy canonical forms number states identically);
* :class:`DenseDFA` keeps the transition function as one flat
  ``array('i')`` — ``delta[state * n_symbols + symbol]`` with ``-1`` as
  the implicit dead state — plus a ``bytearray`` acceptance bitmap;
* :class:`ProductPipeline` composes an **n-ary product lazily**: only
  reachable product states are explored, components that can no longer
  contribute to acceptance prune the frontier, and
  :meth:`ProductPipeline.is_empty` / :meth:`ProductPipeline.contains`
  short-circuit without materializing any automaton at all;
* kernel-native **subset construction** (:func:`determinize_dense`,
  NFA state sets as int bitmasks) and **Hopcroft minimization** over
  preimage buckets (:meth:`DenseDFA.minimize`).

Conversion happens only at the boundaries: :func:`to_dense` memoizes the
dense form on the source DFA, and :meth:`DenseDFA.to_dfa` attaches the
dense form to the dict DFA it builds — so chained operations (the
normalization pipeline of :class:`~repro.automatic.relation.
RelationAutomaton`, the MSO compiler, the SQL pattern matchers) keep all
real work in flat arrays and never rebuild a dense table from dicts.

Cooperative deadlines (:func:`repro.engine.deadline.checkpoint`) are
honored once per product state / subset / refinement splitter, exactly
like the legacy paths.  Observability counters live under ``kernel.*``
(see ``docs/explain_and_metrics.md``).
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Iterable, Sequence
from typing import Optional

from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS

try:  # vectorized fast paths; the array-backed code below is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

# Largest product-state capacity the vectorized product will allocate an
# id table for (int32 entries; 1 << 22 is a 16 MiB table).  Bigger
# products fall back to the lazy per-state loop, which prunes anyway.
_NP_PRODUCT_CAPACITY = 1 << 22
# Below this many transitions the vectorized minimizer's setup overhead
# exceeds the win; tiny automata stay on the pure Hopcroft path.
_NP_MINIMIZE_FLOOR = 192

__all__ = [
    "DenseDFA",
    "ProductPipeline",
    "SymbolTable",
    "complement_within",
    "determinize_dense",
    "determinize_minimized",
    "determinize_minimized_dense",
    "equivalent_dense",
    "equivalent_dfa",
    "intersect_all_minimized",
    "minimize_dfa",
    "product_dfa",
    "product_is_empty",
    "product_minimized",
    "to_dense",
    "union_all_minimized",
    "union_all_within",
]


class SymbolTable:
    """Interning table mapping alphabet symbols to contiguous ints.

    Symbols keep their insertion order; :func:`to_dense` builds tables in
    ``sorted(alphabet, key=repr)`` order so dense state numbering agrees
    with :meth:`DFA.canonical`'s BFS order.  Tables compare compatible by
    their symbol tuple, not identity: two automata built independently
    over the same alphabet share dense forms without re-interning.
    """

    __slots__ = ("_index", "_symbols")

    def __init__(self, symbols: Iterable[object] = ()):
        self._index: dict[object, int] = {}
        self._symbols: list[object] = []
        for sym in symbols:
            self.intern(sym)

    def intern(self, symbol: object) -> int:
        """Return the symbol's code, assigning the next int if new."""
        idx = self._index.get(symbol)
        if idx is None:
            idx = len(self._symbols)
            self._index[symbol] = idx
            self._symbols.append(symbol)
            METRICS.inc("kernel.interned_symbols")
        return idx

    def index(self, symbol: object) -> int:
        """The symbol's code, or ``-1`` when it was never interned."""
        return self._index.get(symbol, -1)

    @property
    def symbols(self) -> tuple[object, ...]:
        return tuple(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __contains__(self, symbol: object) -> bool:
        return symbol in self._index

    def __repr__(self) -> str:
        return f"SymbolTable({len(self._symbols)} symbols)"


def _table_for(alphabet: Iterable[object]) -> SymbolTable:
    """The canonical table for an alphabet: symbols sorted by ``repr``."""
    return SymbolTable(sorted(alphabet, key=repr))


class DenseDFA:
    """A DFA over interned symbols with a flat ``array('i')`` delta.

    ``delta[q * k + s]`` is the successor of state ``q`` on symbol code
    ``s``, or ``-1`` for the implicit dead state (partial transitions are
    kept partial — completing is free because ``-1`` *is* the sink).
    ``accepting`` is a ``bytearray`` bitmap.  Instances are immutable by
    convention; every operation returns a fresh automaton.
    """

    __slots__ = ("table", "n", "start", "accepting", "delta")

    def __init__(
        self,
        table: SymbolTable,
        n: int,
        start: int,
        accepting: bytearray,
        delta: array,
    ):
        self.table = table
        self.n = n
        self.start = start
        self.accepting = accepting
        self.delta = delta
        METRICS.inc("kernel.dense_states", n)

    # ------------------------------------------------------------ boundaries

    @classmethod
    def from_dfa(cls, dfa, table: Optional[SymbolTable] = None) -> "DenseDFA":
        """Dense form of a dict-of-dicts DFA (reachable states only).

        States are renumbered in BFS order from the start state with
        symbols visited in table order — the same order
        :meth:`DFA.canonical` uses, so a canonical DFA round-trips
        structurally.  When ``table`` covers more symbols than the DFA's
        alphabet, the missing symbols are dead (``-1``) — the dense
        analogue of the legacy product's union-alphabet behavior.
        """
        if table is None:
            table = _table_for(dfa.alphabet)
        k = len(table)
        syms = table.symbols
        order: dict[object, int] = {dfa.start: 0}
        rows: list[object] = [dfa.start]
        queue = deque([dfa.start])
        transitions = dfa.transitions
        while queue:
            q = queue.popleft()
            delta = transitions.get(q)
            if not delta:
                continue
            for sym in syms:
                t = delta.get(sym)
                if t is not None and t not in order:
                    order[t] = len(order)
                    rows.append(t)
                    queue.append(t)
        n = len(rows)
        flat = array("i", bytes(0)) if n == 0 else array("i", [-1]) * (n * k)
        accepting = bytearray(n)
        acc = dfa.accepting
        for q, state in enumerate(rows):
            if state in acc:
                accepting[q] = 1
            delta = transitions.get(state)
            if not delta:
                continue
            base = q * k
            for s in range(k):
                t = delta.get(syms[s])
                if t is not None:
                    flat[base + s] = order[t]
        METRICS.inc("kernel.dense_dfas")
        return cls(table, n, 0, accepting, flat)

    def to_dfa(self):
        """The dict-of-dicts view (partial; ``-1`` edges are dropped).

        The dense form is attached to the result's ``_dense_cache`` slot
        so a later :func:`to_dense` is free — the round-trip is the
        boundary, not a rebuild.
        """
        from repro.automata.dfa import DFA

        syms = self.table.symbols
        k = len(syms)
        delta = self.delta
        transitions: dict[object, dict[object, object]] = {}
        for q in range(self.n):
            base = q * k
            row = {
                syms[s]: delta[base + s] for s in range(k) if delta[base + s] >= 0
            }
            if row:
                transitions[q] = row
        dfa = DFA(
            syms,
            range(self.n),
            self.start,
            [q for q in range(self.n) if self.accepting[q]],
            transitions,
        )
        dfa._dense_cache = self
        return dfa

    # ------------------------------------------------------------------ runs

    def accepts(self, word: Sequence[object]) -> bool:
        """Run the automaton on a word of (uninterned) symbols."""
        index = self.table.index
        delta = self.delta
        k = len(self.table)
        q = self.start
        for sym in word:
            s = index(sym)
            if s < 0:
                return False
            q = delta[q * k + s]
            if q < 0:
                return False
        return bool(self.accepting[q])

    @property
    def num_states(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"DenseDFA(states={self.n}, symbols={len(self.table)}, "
            f"accepting={sum(self.accepting)})"
        )

    # ------------------------------------------------------- transformations

    def reindex(self, table: SymbolTable) -> "DenseDFA":
        """The same automaton over a wider symbol table.

        Symbols of ``table`` this automaton never saw are dead; every
        symbol of this automaton's table must be in ``table``.
        """
        if table.symbols == self.table.symbols:
            return self
        old_k = len(self.table)
        new_k = len(table)
        mapping = [table.index(sym) for sym in self.table.symbols]
        if any(m < 0 for m in mapping):
            raise ValueError("target table must contain every source symbol")
        flat = array("i", [-1]) * (self.n * new_k)
        delta = self.delta
        for q in range(self.n):
            old_base = q * old_k
            new_base = q * new_k
            for s in range(old_k):
                flat[new_base + mapping[s]] = delta[old_base + s]
        return DenseDFA(table, self.n, self.start, bytearray(self.accepting), flat)

    def complement(self) -> "DenseDFA":
        """Flip acceptance (with the dead sink made explicit and accepting)."""
        k = len(self.table)
        n = self.n
        sink = n
        flat = array("i", self.delta)
        for i in range(len(flat)):
            if flat[i] < 0:
                flat[i] = sink
        flat.extend(array("i", [sink]) * k)
        accepting = bytearray(1 if not a else 0 for a in self.accepting)
        accepting.append(1)
        return DenseDFA(self.table, n + 1, self.start, accepting, flat)

    def is_empty(self) -> bool:
        """True iff no accepting state is reachable from the start."""
        if self.n == 0:
            return True
        accepting = self.accepting
        if accepting[self.start]:
            return False
        k = len(self.table)
        delta = self.delta
        seen = bytearray(self.n)
        seen[self.start] = 1
        stack = [self.start]
        while stack:
            q = stack.pop()
            base = q * k
            for s in range(k):
                t = delta[base + s]
                if t >= 0 and not seen[t]:
                    if accepting[t]:
                        return False
                    seen[t] = 1
                    stack.append(t)
        return True

    def minimize(self) -> "DenseDFA":
        """Minimal dense DFA: Hopcroft over preimage buckets.

        The result matches :meth:`DFA.minimize` structurally: dead states
        (empty futures) are removed — they all land in the sink's block —
        and the surviving blocks are renumbered in BFS order from the
        start with symbols in table order, i.e. the legacy
        ``trim().canonical()`` form.  With numpy present, the
        Myhill-Nerode partition is computed by vectorized signature
        refinement instead (same blocks, same output).
        """
        METRICS.inc("kernel.minimizations")
        n = self.n
        k = len(self.table)
        if n == 0:
            return DenseDFA(self.table, 0, 0, bytearray(), array("i"))
        if _np is not None and n * k >= _NP_MINIMIZE_FLOOR:
            block_of = self._nerode_blocks_np()
        else:
            block_of = self._nerode_blocks_hopcroft()
        return self._rebuild_from_blocks(block_of)

    def _nerode_blocks_hopcroft(self) -> Sequence[int]:
        """Myhill-Nerode partition via Hopcroft over preimage buckets.

        Returns ``block_of`` over ``n + 1`` states — the virtual completed
        sink is index ``n``, and its block is exactly the dead states.
        """
        n = self.n
        k = len(self.table)
        delta = self.delta
        sink = n  # virtual completed sink
        total = n + 1

        # Preimage buckets: inv[s * total + t] = sources stepping to t on s.
        inv: list[list[int]] = [[] for _ in range(k * total)]
        for q in range(n):
            base = q * k
            for s in range(k):
                t = delta[base + s]
                inv[s * total + (t if t >= 0 else sink)].append(q)
        for s in range(k):
            inv[s * total + sink].append(sink)

        acc_block = {q for q in range(n) if self.accepting[q]}
        rej_block = {q for q in range(n) if not self.accepting[q]}
        rej_block.add(sink)
        blocks: list[set[int]] = []
        block_of = array("i", [0]) * total
        for block in (acc_block, rej_block):
            if block:
                index = len(blocks)
                blocks.append(block)
                for q in block:
                    block_of[q] = index
        # Seeding only the smaller half suffices (Hopcroft's invariant);
        # splits below push the new block, which is always the smaller.
        seed = 0
        if len(blocks) == 2 and len(blocks[1]) < len(blocks[0]):
            seed = 1
        worklist: deque[tuple[int, int]] = deque((seed, s) for s in range(k))
        ticks = 0
        while worklist:
            ticks += 1
            if not ticks & 63:
                checkpoint()
            splitter_index, s = worklist.popleft()
            preds: set[int] = set()
            base_inv = s * total
            for target in blocks[splitter_index]:
                preds.update(inv[base_inv + target])
            if not preds:
                continue
            touched: dict[int, list[int]] = {}
            for q in preds:
                touched.setdefault(block_of[q], []).append(q)
            for b_index, inside_list in touched.items():
                block = blocks[b_index]
                if len(inside_list) == len(block):
                    continue
                inside = set(inside_list)
                outside = block - inside
                if len(inside) <= len(outside):
                    small, large = inside, outside
                else:
                    small, large = outside, inside
                blocks[b_index] = large
                new_index = len(blocks)
                blocks.append(small)
                for q in small:
                    block_of[q] = new_index
                for sym in range(k):
                    worklist.append((new_index, sym))
        return block_of

    def _nerode_blocks_np(self) -> Sequence[int]:
        """Myhill-Nerode partition via vectorized signature refinement.

        Each round relabels every state by ``(block, block-of-successor
        per symbol)`` with one ``np.unique`` per symbol; refinement only
        ever splits, so an unchanged block count is the fixpoint.  Same
        partition as :meth:`_nerode_blocks_hopcroft`, different engine.
        """
        np = _np
        n = self.n
        k = len(self.table)
        sink = n
        total = n + 1
        delta = np.asarray(self.delta, dtype=np.int64).reshape(n, k)
        delta = np.where(delta < 0, sink, delta)
        delta = np.concatenate(
            [delta, np.full((1, k), sink, dtype=np.int64)], axis=0
        )
        acc = np.zeros(total, dtype=np.int64)
        acc[:n] = np.frombuffer(bytes(self.accepting), dtype=np.uint8)
        block = acc
        count = len(np.unique(block))
        while True:
            checkpoint()
            cur = block
            for s in range(k):
                pair = cur * total + block[delta[:, s]]
                uniq, cur = np.unique(pair, return_inverse=True)
            new_count = len(uniq) if k else count
            if new_count == count:
                return block.tolist()
            block = cur
            count = new_count

    def _rebuild_from_blocks(self, block_of: Sequence[int]) -> "DenseDFA":
        """Canonical dense DFA from a Nerode partition over states + sink.

        Drops the sink's block (the dead states) and renumbers the rest
        in BFS order from the start's block, symbols in table order.
        """
        n = self.n
        k = len(self.table)
        delta = self.delta
        sink = n
        dead_block = block_of[sink]
        start_block = block_of[self.start]
        if start_block == dead_block:
            # Empty language: the canonical single rejecting state.
            return DenseDFA(self.table, 1, 0, bytearray(1), array("i", [-1]) * k)
        # First-seen representative per block; the sink's own block may
        # be represented by any dead state (it is dropped below anyway).
        reps: dict[int, int] = {}
        for q in range(n):
            b = block_of[q]
            if b not in reps:
                reps[b] = q
        order: dict[int, int] = {start_block: 0}
        rows = [start_block]
        queue = deque([start_block])
        while queue:
            b = queue.popleft()
            base = reps[b] * k
            for s in range(k):
                t = delta[base + s]
                tb = block_of[t] if t >= 0 else dead_block
                if tb != dead_block and tb not in order:
                    order[tb] = len(order)
                    rows.append(tb)
                    queue.append(tb)
        m = len(rows)
        flat = array("i", [-1]) * (m * k)
        accepting = bytearray(m)
        for new_q, b in enumerate(rows):
            rep = reps[b]
            if self.accepting[rep]:
                accepting[new_q] = 1
            base = rep * k
            out = new_q * k
            for s in range(k):
                t = delta[base + s]
                if t < 0:
                    continue
                tb = block_of[t]
                if tb != dead_block:
                    flat[out + s] = order[tb]
        return DenseDFA(self.table, m, 0, accepting, flat)


# -------------------------------------------------------------- lazy products


def _mode(mode, m: int):
    """Resolve a mode name/callable to (accept, required-alive indices)."""
    if callable(mode):
        return mode, frozenset()
    if mode == "and":
        return (lambda flags: all(flags)), frozenset(range(m))
    if mode == "or":
        return (lambda flags: any(flags)), frozenset()
    if mode == "diff":
        return (
            lambda flags: flags[0] and not any(flags[1:]),
            frozenset([0]),
        )
    if mode == "xor":
        return (lambda flags: sum(flags) % 2 == 1), frozenset()
    raise ValueError(f"unknown product mode {mode!r}")


def _align(dfas: Sequence[DenseDFA]) -> list[DenseDFA]:
    """Put all automata on one shared symbol table (the sorted union)."""
    first = dfas[0].table.symbols
    if all(d.table.symbols == first for d in dfas):
        return list(dfas)
    union: set[object] = set()
    for d in dfas:
        union.update(d.table.symbols)
    table = _table_for(union)
    return [d.reindex(table) for d in dfas]


class ProductPipeline:
    """A lazily-composed n-ary product of dense automata.

    Nothing is built at construction time; :meth:`is_empty`,
    :meth:`contains` and :meth:`accepts` explore only as much of the
    product space as the answer needs, and :meth:`materialize` builds the
    reachable (pruned) product once, when a caller genuinely needs the
    automaton.  ``mode`` is ``"and"`` / ``"or"`` / ``"diff"`` /
    ``"xor"`` or an acceptance callable over the component flags; the
    named modes also prune states whose required components are dead.
    An acceptance callable must reject the all-dead flag vector (the
    product, like the legacy one, never materializes all-dead states).
    """

    __slots__ = ("dfas", "accept", "required", "mode_name")

    def __init__(self, dfas: Sequence[DenseDFA], mode="and", required=None):
        if not dfas:
            raise ValueError("a product needs at least one automaton")
        self.dfas = _align(dfas)
        self.accept, mode_required = _mode(mode, len(self.dfas))
        self.mode_name = mode if isinstance(mode, str) else None
        self.required = (
            frozenset(required) if required is not None else mode_required
        )
        METRICS.inc("kernel.lazy_products")

    # --------------------------------------------------------------- helpers

    @property
    def table(self) -> SymbolTable:
        return self.dfas[0].table

    def _flags(self, state: tuple[int, ...]) -> list[bool]:
        return [
            q >= 0 and bool(d.accepting[q])
            for q, d in zip(state, self.dfas)
        ]

    def _explore(self):
        """BFS over reachable, non-pruned product states.

        Yields ``(state, accepting)`` in discovery order; the caller
        drives it only as far as the answer needs (emptiness stops at the
        first accepting state).
        """
        k = len(self.table)
        deltas = [d.delta for d in self.dfas]
        m = len(self.dfas)
        required = self.required
        accept = self.accept
        start = tuple(d.start for d in self.dfas)
        seen: set[tuple[int, ...]] = {start}
        queue = deque([start])
        yield start, accept(self._flags(start))
        while queue:
            checkpoint()
            state = queue.popleft()
            for s in range(k):
                alive = False
                target = []
                for i in range(m):
                    qi = state[i]
                    t = deltas[i][qi * k + s] if qi >= 0 else -1
                    target.append(t)
                    if t >= 0:
                        alive = True
                if not alive:
                    continue
                if any(target[i] < 0 for i in required):
                    continue  # acceptance is unreachable: prune lazily
                tup = tuple(target)
                if tup not in seen:
                    seen.add(tup)
                    queue.append(tup)
                    yield tup, accept(self._flags(tup))

    # ------------------------------------------------------------- decisions

    def is_empty(self) -> bool:
        """Emptiness of the product language, short-circuited.

        Stops at the first accepting product state — no automaton is
        materialized either way, and an early hit never explores the rest
        of the (possibly exponential) product space.
        """
        for _state, accepting in self._explore():
            if accepting:
                METRICS.inc("kernel.short_circuits")
                return False
        return True

    def contains(self, other: DenseDFA) -> bool:
        """``L(other) ⊆ L(self-product)`` without materializing either side.

        Built as emptiness of ``other ∧ ¬product`` — one lazy pipeline
        over the components plus ``other``, no intermediate automata.
        """
        accept = self.accept
        inner = ProductPipeline(
            [other, *self.dfas],
            mode=lambda flags: flags[0] and not accept(list(flags[1:])),
            required=frozenset([0]),
        )
        return inner.is_empty()

    def accepts(self, word: Sequence[object]) -> bool:
        """Run all components in lockstep on one word."""
        index = self.table.index
        k = len(self.table)
        state = [d.start for d in self.dfas]
        deltas = [d.delta for d in self.dfas]
        for sym in word:
            s = index(sym)
            for i, qi in enumerate(state):
                if qi >= 0:
                    state[i] = deltas[i][qi * k + s] if s >= 0 else -1
            if all(q < 0 for q in state):
                return False
        return self.accept(self._flags(tuple(state)))

    # ---------------------------------------------------------- construction

    def materialize(self) -> DenseDFA:
        """Build the reachable product as a dense automaton.

        With numpy present (and a named mode, and a product-state space
        small enough for an id table) the BFS runs level-synchronously
        over vectorized frontier arrays; states are numbered in
        first-discovery order either way, so both engines build the
        identical automaton.
        """
        if (
            _np is not None
            and self.mode_name is not None
            and all(d.n > 0 for d in self.dfas)
        ):
            capacity = 1
            for d in self.dfas:
                capacity *= d.n + 1
                if capacity > _NP_PRODUCT_CAPACITY:
                    break
            if capacity <= _NP_PRODUCT_CAPACITY:
                return self._materialize_np(capacity)
        return self._materialize_lazy()

    def _materialize_lazy(self) -> DenseDFA:
        """The per-state fallback: one product state at a time."""
        k = len(self.table)
        deltas = [d.delta for d in self.dfas]
        m = len(self.dfas)
        required = self.required
        accept = self.accept
        start = tuple(d.start for d in self.dfas)
        seen: dict[tuple[int, ...], int] = {start: 0}
        rows: list[tuple[int, ...]] = [start]
        accepting = bytearray([1 if accept(self._flags(start)) else 0])
        flat = array("i")
        queue = deque([start])
        dead_row = array("i", [-1]) * k
        ticks = 0
        while queue:
            ticks += 1
            if not ticks & 63:
                checkpoint()
            state = queue.popleft()
            row = array("i", dead_row)
            for s in range(k):
                alive = False
                target = []
                for i in range(m):
                    qi = state[i]
                    t = deltas[i][qi * k + s] if qi >= 0 else -1
                    target.append(t)
                    if t >= 0:
                        alive = True
                if not alive:
                    continue
                if any(target[i] < 0 for i in required):
                    continue
                tup = tuple(target)
                sid = seen.get(tup)
                if sid is None:
                    sid = len(seen)
                    seen[tup] = sid
                    rows.append(tup)
                    queue.append(tup)
                    accepting.append(1 if accept(self._flags(tup)) else 0)
                row[s] = sid
            flat.extend(row)
        METRICS.inc("kernel.product_states", len(rows))
        return DenseDFA(self.table, len(rows), 0, accepting, flat)

    def _materialize_np(self, capacity: int) -> DenseDFA:
        """Vectorized BFS materialization over mixed-radix state codes.

        Component ``i``'s dead state is made explicit as ``n_i`` (so a
        code is ``(((q_0) * (n_1+1) + q_1) * ... )``); a per-level
        ``np.unique`` over the row-major edge scan discovers new codes in
        exactly the FIFO order of :meth:`_materialize_lazy`.
        """
        np = _np
        k = len(self.table)
        m = len(self.dfas)
        sizes = [d.n + 1 for d in self.dfas]
        sinks = [d.n for d in self.dfas]
        deltas = []
        accs = []
        for d in self.dfas:
            dd = np.asarray(d.delta, dtype=np.int64).reshape(d.n, k)
            dd = np.where(dd < 0, d.n, dd)
            dd = np.concatenate(
                [dd, np.full((1, k), d.n, dtype=np.int64)], axis=0
            )
            deltas.append(dd)
            flags = np.zeros(d.n + 1, dtype=bool)
            flags[: d.n] = np.frombuffer(bytes(d.accepting), dtype=np.uint8)
            accs.append(flags)

        def decode(codes):
            comps = [None] * m
            rem = codes
            for i in range(m - 1, 0, -1):
                comps[i] = rem % sizes[i]
                rem = rem // sizes[i]
            comps[0] = rem
            return comps

        start_code = 0
        for i, d in enumerate(self.dfas):
            start_code = start_code * sizes[i] + d.start
        id_of = np.full(capacity, -1, dtype=np.int64)
        id_of[start_code] = 0
        codes_in_order = [np.array([start_code], dtype=np.int64)]
        frontier = codes_in_order[0]
        next_id = 1
        while frontier.size:
            checkpoint()
            comps = decode(frontier)
            targets = [deltas[i][comps[i]] for i in range(m)]  # (F, k) each
            dead = targets[0] == sinks[0]
            for i in range(1, m):
                dead &= targets[i] == sinks[i]
            keep = ~dead
            for i in self.required:
                keep &= targets[i] != sinks[i]
            codes_next = targets[0]
            for i in range(1, m):
                codes_next = codes_next * sizes[i] + targets[i]
            flat_targets = codes_next[keep]  # row-major = FIFO edge order
            uniq, first = np.unique(flat_targets, return_index=True)
            fresh = id_of[uniq] < 0
            new_codes = uniq[fresh]
            new_codes = new_codes[np.argsort(first[fresh], kind="stable")]
            id_of[new_codes] = np.arange(
                next_id, next_id + new_codes.size, dtype=np.int64
            )
            next_id += new_codes.size
            codes_in_order.append(new_codes)
            frontier = new_codes

        all_codes = np.concatenate(codes_in_order)
        comps = decode(all_codes)
        targets = [deltas[i][comps[i]] for i in range(m)]
        dead = targets[0] == sinks[0]
        for i in range(1, m):
            dead &= targets[i] == sinks[i]
        keep = ~dead
        for i in self.required:
            keep &= targets[i] != sinks[i]
        codes_next = targets[0]
        for i in range(1, m):
            codes_next = codes_next * sizes[i] + targets[i]
        flat = np.where(keep, id_of[codes_next], -1).astype(np.int32)

        flags = [accs[i][comps[i]] for i in range(m)]
        mode = self.mode_name
        if mode == "and":
            accepting = np.logical_and.reduce(flags)
        elif mode == "or":
            accepting = np.logical_or.reduce(flags)
        elif mode == "diff":
            rest = (
                np.logical_or.reduce(flags[1:])
                if m > 1
                else np.zeros_like(flags[0])
            )
            accepting = flags[0] & ~rest
        else:  # "xor" — _mode() already rejected other names
            accepting = np.logical_xor.reduce(flags)

        n_states = int(all_codes.size)
        METRICS.inc("kernel.product_states", n_states)
        out = array("i")
        if out.itemsize == 4:
            out.frombytes(flat.reshape(-1).tobytes())
        else:  # pragma: no cover - exotic int width
            out = array("i", flat.reshape(-1).tolist())
        return DenseDFA(
            self.table,
            n_states,
            0,
            bytearray(accepting.astype(np.uint8).tobytes()),
            out,
        )

    def minimized(self) -> DenseDFA:
        """Materialize and minimize, all in dense form."""
        return self.materialize().minimize()


# -------------------------------------------------------- subset construction


def determinize_dense(nfa, table: Optional[SymbolTable] = None) -> DenseDFA:
    """Kernel-native subset construction.

    NFA state sets are int bitmasks (hash/compare in machine words, set
    union is ``|``); epsilon closures are precomputed per state.  The
    resulting dense automaton numbers subsets in BFS discovery order with
    symbols in table order — like the legacy ``determinize().canonical()``
    chain, but with no dict-of-dicts intermediate.
    """
    METRICS.inc("kernel.determinizations")
    if table is None:
        table = _table_for(nfa.alphabet)
    k = len(table)
    syms = table.symbols
    states = sorted(nfa.states, key=repr)
    state_id = {q: i for i, q in enumerate(states)}
    n = len(states)

    from repro.automata.nfa import EPSILON

    # Per-state move masks (sparse: only labels the NFA actually has).
    move: list[dict[int, int]] = [{} for _ in range(n)]
    eps_direct = [0] * n
    for q, delta in nfa.transitions.items():
        qi = state_id[q]
        for label, targets in delta.items():
            mask = 0
            for t in targets:
                mask |= 1 << state_id[t]
            if label is EPSILON:
                eps_direct[qi] |= mask
            else:
                s = table.index(label)
                if s >= 0:
                    move[qi][s] = move[qi].get(s, 0) | mask

    # Epsilon closures per state, to fixpoint.
    closure = [eps_direct[i] | (1 << i) for i in range(n)]
    changed = True
    while changed:
        changed = False
        for i in range(n):
            mask = closure[i]
            rest = mask
            while rest:
                low = rest & -rest
                rest ^= low
                mask |= closure[low.bit_length() - 1]
            if mask != closure[i]:
                closure[i] = mask
                changed = True

    acc_mask = 0
    for q in nfa.accepting:
        acc_mask |= 1 << state_id[q]

    start_mask = 0
    for q in nfa.starts:
        start_mask |= closure[state_id[q]]

    seen: dict[int, int] = {start_mask: 0}
    accepting = bytearray([1 if start_mask & acc_mask else 0])
    flat = array("i")
    queue = deque([start_mask])
    dead_row = array("i", [-1]) * k
    while queue:
        checkpoint()
        subset = queue.popleft()
        row = array("i", dead_row)
        for s in range(k):
            target = 0
            rest = subset
            while rest:
                low = rest & -rest
                rest ^= low
                target |= move[low.bit_length() - 1].get(s, 0)
            if not target:
                continue
            closed = 0
            rest = target
            while rest:
                low = rest & -rest
                rest ^= low
                closed |= closure[low.bit_length() - 1]
            sid = seen.get(closed)
            if sid is None:
                sid = len(seen)
                seen[closed] = sid
                queue.append(closed)
                accepting.append(1 if closed & acc_mask else 0)
            row[s] = sid
        flat.extend(row)
    return DenseDFA(table, len(seen), 0, accepting, flat)


# --------------------------------------------------------------- equivalence


def equivalent_dense(left: DenseDFA, right: DenseDFA) -> bool:
    """Hopcroft–Karp language equivalence: union-find, no product.

    Merges the two (implicitly completed) state spaces pair by pair from
    the starts; a merge joining an accepting and a rejecting class is a
    counterexample.  Runs in near-linear time in the number of reachable
    merged pairs — the legacy path built a full symmetric-difference
    product and checked its emptiness.
    """
    METRICS.inc("kernel.equivalence_checks")
    a, b = _align([left, right])
    k = len(a.table)
    na, nb = a.n, b.n
    # Combined numbering: a-states, a-sink, b-states, b-sink.
    a_sink = na
    offset = na + 1
    b_sink = offset + nb
    total = b_sink + 1
    acc = bytearray(total)
    for q in range(na):
        acc[q] = a.accepting[q]
    for q in range(nb):
        acc[offset + q] = b.accepting[q]

    parent = array("i", range(total))

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    da, db = a.delta, b.delta
    stack = [(a.start, offset + b.start)]
    parent[find(offset + b.start)] = find(a.start)
    steps = 0
    while stack:
        steps += 1
        if not steps % 64:
            checkpoint()
        p, q = stack.pop()
        if acc[p] != acc[q]:
            return False
        for s in range(k):
            if p == a_sink:
                tp = a_sink
            else:
                t = da[p * k + s]
                tp = t if t >= 0 else a_sink
            if q == b_sink:
                tq = b_sink
            else:
                t = db[(q - offset) * k + s]
                tq = offset + t if t >= 0 else b_sink
            rp, rq = find(tp), find(tq)
            if rp != rq:
                parent[rq] = rp
                stack.append((tp, tq))
    return True


# ------------------------------------------------------- DFA-level boundary


def to_dense(dfa, table: Optional[SymbolTable] = None) -> DenseDFA:
    """Dense form of a legacy DFA, memoized on the DFA.

    The memo holds the form over the DFA's own (sorted) alphabet; a wider
    ``table`` reindexes the memoized form instead of re-walking dicts.
    """
    cached = getattr(dfa, "_dense_cache", None)
    if cached is None:
        cached = DenseDFA.from_dfa(dfa)
        try:
            dfa._dense_cache = cached
        except AttributeError:  # pragma: no cover - foreign DFA-likes
            pass
    if table is not None and table.symbols != cached.table.symbols:
        return cached.reindex(table)
    return cached


def product_dfa(left, right, mode="and"):
    """Lazy binary product, materialized and returned as a legacy DFA.

    Drop-in for the legacy ``_product(...).trim_unreachable()`` chain:
    only reachable (and, for ``and``/``diff`` modes, non-pruned) product
    states exist, already densely numbered.
    """
    pipeline = ProductPipeline([to_dense(left), to_dense(right)], mode)
    return pipeline.materialize().to_dfa()


def product_minimized(left, right, mode="and"):
    """Lazy binary product, minimized densely, as a legacy DFA."""
    pipeline = ProductPipeline([to_dense(left), to_dense(right)], mode)
    return pipeline.minimized().to_dfa()


def product_is_empty(left, right, mode="and") -> bool:
    """Emptiness of a binary product without materializing it."""
    return ProductPipeline([to_dense(left), to_dense(right)], mode).is_empty()


def intersect_all_minimized(dfas: Sequence) -> object:
    """One n-ary lazy intersection + one minimization, as a legacy DFA."""
    if len(dfas) == 1:
        return minimize_dfa(dfas[0])
    pipeline = ProductPipeline([to_dense(d) for d in dfas], "and")
    return pipeline.minimized().to_dfa()


def union_all_minimized(dfas: Sequence) -> object:
    """One n-ary lazy union + one minimization, as a legacy DFA."""
    if len(dfas) == 1:
        return minimize_dfa(dfas[0])
    pipeline = ProductPipeline([to_dense(d) for d in dfas], "or")
    return pipeline.minimized().to_dfa()


def union_all_within(dfas: Sequence, universe) -> object:
    """``(⋃ L(dfas)) ∩ L(universe)`` minimized, staying dense throughout.

    The MSO compiler's disjunction shape: one n-ary union pipeline, one
    filtering intersection, one Hopcroft pass, no dict intermediates.
    """
    dense = [to_dense(d) for d in dfas]
    if len(dense) > 1:
        merged = ProductPipeline(dense, "or").materialize()
    else:
        merged = dense[0]
    pipeline = ProductPipeline([merged, to_dense(universe)], "and")
    return pipeline.minimized().to_dfa()


def complement_within(dfa, universe) -> object:
    """``universe \\ L(dfa)`` minimized, all in dense form.

    The fused replacement for ``complement()`` + normalization product:
    one lazy pipeline over (¬dfa, universe), one Hopcroft pass.
    """
    comp = to_dense(dfa).complement()
    pipeline = ProductPipeline([comp, to_dense(universe)], "and")
    return pipeline.minimized().to_dfa()


def minimize_dfa(dfa) -> object:
    """Dense Hopcroft minimization of a legacy DFA (legacy DFA out)."""
    return to_dense(dfa).minimize().to_dfa()


def determinize_minimized_dense(nfa) -> DenseDFA:
    """Subset construction + Hopcroft, staying dense."""
    return determinize_dense(nfa).minimize()


def determinize_minimized(nfa) -> object:
    """Subset construction + Hopcroft, converted out at the boundary."""
    return determinize_minimized_dense(nfa).to_dfa()


def equivalent_dfa(left, right) -> bool:
    """Hopcroft–Karp equivalence of two legacy DFAs (union alphabet)."""
    return equivalent_dense(to_dense(left), to_dense(right))
