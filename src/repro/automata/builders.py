"""Convenience constructors for common automata over character alphabets."""

from __future__ import annotations

from collections.abc import Iterable

from repro.automata.dfa import DFA
from repro.strings.alphabet import Alphabet


def dfa_empty_language(alphabet: Alphabet) -> DFA:
    """DFA accepting nothing."""
    return DFA(alphabet.symbols, [0], 0, [], {})


def dfa_all_strings(alphabet: Alphabet) -> DFA:
    """DFA accepting all of ``Sigma*``."""
    return DFA(
        alphabet.symbols,
        [0],
        0,
        [0],
        {0: {a: 0 for a in alphabet.symbols}},
    )


def dfa_single_word(alphabet: Alphabet, word: str) -> DFA:
    """DFA accepting exactly ``{word}``."""
    alphabet.check_string(word)
    n = len(word)
    transitions = {i: {word[i]: i + 1} for i in range(n)}
    return DFA(alphabet.symbols, range(n + 1), 0, [n], transitions)


def dfa_from_finite_language(alphabet: Alphabet, words: Iterable[str]) -> DFA:
    """Minimal DFA for a finite set of strings (trie + minimization)."""
    words = list(words)
    for w in words:
        alphabet.check_string(w)
    # Build a trie.
    root = 0
    nxt = 1
    transitions: dict[int, dict[str, int]] = {}
    accepting: set[int] = set()
    for w in words:
        q = root
        for c in w:
            delta = transitions.setdefault(q, {})
            if c not in delta:
                delta[c] = nxt
                nxt += 1
            q = delta[c]
        accepting.add(q)
    dfa = DFA(alphabet.symbols, range(nxt), root, accepting, transitions)
    return dfa.minimize()


def dfa_length_at_most(alphabet: Alphabet, n: int) -> DFA:
    """DFA for ``Sigma^{<=n}`` (the paper's ``down``-style bound)."""
    if n < 0:
        return dfa_empty_language(alphabet)
    transitions = {
        i: {a: i + 1 for a in alphabet.symbols} for i in range(n)
    }
    return DFA(alphabet.symbols, range(n + 1), 0, range(n + 1), transitions)


def dfa_length_exactly(alphabet: Alphabet, n: int) -> DFA:
    """DFA for all strings of length exactly ``n``."""
    if n < 0:
        return dfa_empty_language(alphabet)
    transitions = {
        i: {a: i + 1 for a in alphabet.symbols} for i in range(n)
    }
    return DFA(alphabet.symbols, range(n + 1), 0, [n], transitions)


def starts_with_dfa(alphabet: Alphabet, prefix: str) -> DFA:
    """DFA for ``prefix . Sigma*`` (a star-free language)."""
    alphabet.check_string(prefix)
    n = len(prefix)
    transitions: dict[int, dict[str, int]] = {i: {prefix[i]: i + 1} for i in range(n)}
    transitions.setdefault(n, {})
    for a in alphabet.symbols:
        transitions[n][a] = n
    return DFA(alphabet.symbols, range(n + 1), 0, [n], transitions)


def ends_with_dfa(alphabet: Alphabet, suffix: str) -> DFA:
    """Minimal DFA for ``Sigma* . suffix`` (a star-free language).

    Built as a Knuth-Morris-Pratt style matcher that tracks the longest
    prefix of ``suffix`` that is a suffix of the input read so far.
    """
    alphabet.check_string(suffix)
    n = len(suffix)
    transitions: dict[int, dict[str, int]] = {}
    for state in range(n + 1):
        transitions[state] = {}
        for a in alphabet.symbols:
            # Longest k such that suffix[:k] is a suffix of suffix[:state] + a.
            candidate = (suffix[:state] + a)[-n:] if n else ""
            k = min(len(candidate), n)
            while k > 0 and suffix[:k] != candidate[len(candidate) - k:]:
                k -= 1
            transitions[state][a] = k
    return DFA(alphabet.symbols, range(n + 1), 0, [n], transitions).minimize()


def contains_factor_dfa(alphabet: Alphabet, factor: str) -> DFA:
    """Minimal DFA for ``Sigma* . factor . Sigma*`` (a star-free language)."""
    alphabet.check_string(factor)
    n = len(factor)
    if n == 0:
        return dfa_all_strings(alphabet)
    transitions: dict[int, dict[str, int]] = {}
    for state in range(n):
        transitions[state] = {}
        for a in alphabet.symbols:
            candidate = factor[:state] + a
            k = min(len(candidate), n)
            while k > 0 and factor[:k] != candidate[len(candidate) - k:]:
                k -= 1
            transitions[state][a] = k
    transitions[n] = {a: n for a in alphabet.symbols}
    return DFA(alphabet.symbols, range(n + 1), 0, [n], transitions).minimize()
