"""Horizontal partitioning of databases across shards.

Two schemes, both deterministic and machine-independent (the hash is
SHA-1 over the row content, not Python's per-process salted ``hash``):

``hash``
    Each *tuple* goes to ``sha1(row) % shards``.  Hashing the row value
    (not the relation name) means identical rows of different relations
    co-locate, every relation spreads across all shards, and adding a
    shard only moves ``1/n`` of the data.  This is the scheme the
    scatter certificates of :mod:`repro.algebra.distribute` target.

``relation``
    Each *relation* goes whole to ``sha1(name) % shards``.  Queries that
    only touch one shard's relations — join shapes included — route to
    that single worker unchanged.

Every partition keeps the **full schema** (relations not stored on a
shard are present and empty), so any shard can evaluate any query of
the schema without "unknown relation" errors, and the empty-relation
semantics do the right thing for the merge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.core.query import StringDatabase
from repro.database.instance import Database
from repro.engine.cache import database_fingerprint
from repro.errors import ShardError

__all__ = [
    "SCHEMES",
    "ShardedDatabase",
    "partition_database",
    "relation_assignment",
    "shard_database",
    "shard_of_relation",
    "shard_of_row",
]

SCHEMES = ("hash", "relation")

#: Field separator for row hashing — outside every alphabet the library
#: accepts (alphabets are printable single characters).
_SEP = "\x1f"


def _stable_hash(text: str) -> int:
    return int.from_bytes(hashlib.sha1(text.encode("utf-8")).digest()[:8], "big")


def shard_of_row(row: tuple[str, ...], shards: int) -> int:
    """The shard storing ``row`` under hash-by-tuple partitioning."""
    return _stable_hash(_SEP.join(row)) % shards


def shard_of_relation(name: str, shards: int) -> int:
    """The shard storing relation ``name`` under by-relation partitioning."""
    return _stable_hash("relation:" + name) % shards


def relation_assignment(database: Database, shards: int) -> dict[str, int]:
    """Relation name -> owning shard, for by-relation partitioning."""
    return {
        name: shard_of_relation(name, shards)
        for name in database.relation_names
    }


def partition_database(
    database: Database, shards: int, scheme: str = "hash"
) -> list[Database]:
    """Split ``database`` into ``shards`` disjoint horizontal partitions.

    The partitions union back to the original relation-by-relation, and
    each carries the original schema (missing relations stay, empty).
    """
    if shards < 1:
        raise ShardError(f"shards must be >= 1, got {shards}", retryable=False)
    if scheme not in SCHEMES:
        raise ShardError(
            f"unknown partitioning scheme {scheme!r} "
            f"(supported: {', '.join(SCHEMES)})",
            retryable=False,
        )
    buckets: list[dict[str, list[tuple[str, ...]]]] = [
        {name: [] for name in database.relation_names} for _ in range(shards)
    ]
    for name in database.relation_names:
        if scheme == "relation":
            owner = shard_of_relation(name, shards)
            buckets[owner][name].extend(database.relation(name))
        else:
            for row in database.relation(name):
                buckets[shard_of_row(row, shards)][name].append(row)
    return [
        Database(database.alphabet, bucket, schema=database.schema)
        for bucket in buckets
    ]


@dataclass(frozen=True)
class ShardedDatabase:
    """One registered database, partitioned: the whole plus its parts.

    ``fingerprint`` is the *whole* database's content fingerprint — the
    key the backend router uses, so a plain :class:`Database` equal in
    content to a registered one is recognized as sharded.  Each part is
    fingerprinted too (``part_fingerprints``), which is what the
    coordinator re-registers after a worker restart and what the stats
    endpoint reports.
    """

    name: str
    database: Database
    scheme: str
    parts: tuple[Database, ...]
    fingerprint: str
    part_fingerprints: tuple[str, ...]
    relation_shards: Optional[dict[str, int]] = None

    @property
    def shards(self) -> int:
        return len(self.parts)

    def part_sizes(self) -> list[int]:
        """Tuples per shard (the skew the stats endpoint surfaces)."""
        return [part.size for part in self.parts]


def shard_database(
    name: str,
    database: Union[Database, StringDatabase],
    shards: int,
    scheme: str = "hash",
) -> ShardedDatabase:
    """Partition + fingerprint a database for registration."""
    db = database.db if isinstance(database, StringDatabase) else database
    parts = partition_database(db, shards, scheme)
    return ShardedDatabase(
        name=name,
        database=db,
        scheme=scheme,
        parts=tuple(parts),
        fingerprint=database_fingerprint(db),
        part_fingerprints=tuple(database_fingerprint(p) for p in parts),
        relation_shards=(
            relation_assignment(db, shards) if scheme == "relation" else None
        ),
    )
