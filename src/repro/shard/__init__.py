"""Multi-process sharded scatter-gather execution.

The package turns the single-process query stack into a coordinator
plus a pool of shard worker *processes* — each worker is effectively
``python -m repro serve --stdio`` owning one horizontal partition of
every registered database and its own automaton/plan caches, so the
GIL stops being the ceiling on selection-heavy workloads.  The
coordinator↔shard wire format is the existing NDJSON protocol
(:mod:`repro.service.protocol`) verbatim: a local pool and a remote
deployment are one code path.

Layers (see ``docs/sharding.md``):

* :mod:`repro.shard.partition` — hash-by-tuple and by-relation
  partitioners, fingerprinted per shard;
* :mod:`repro.shard.pool` — the worker subprocesses and the pipelined
  NDJSON request/response plumbing (per-request ids, per-shard
  deadlines, dead-worker detection);
* :mod:`repro.shard.coordinator` — plan decomposition (via
  :mod:`repro.algebra.distribute`), scatter-gather with straggler
  retry, and the union/dedup merge;
* :mod:`repro.shard.backend` — the ``sharded``
  :class:`~repro.engine.backend.EngineBackend` entering the planner's
  cost argmin, plus the fingerprint router that ties plain
  :class:`~repro.database.instance.Database` objects to their
  coordinator.
"""

from repro.shard.backend import ShardTrace, ShardedBackend, route_for
from repro.shard.coordinator import GatherResult, ShardCoordinator
from repro.shard.partition import (
    SCHEMES,
    ShardedDatabase,
    partition_database,
    relation_assignment,
    shard_database,
    shard_of_relation,
    shard_of_row,
)
from repro.shard.pool import ShardWorker, WorkerPool

__all__ = [
    "SCHEMES",
    "GatherResult",
    "ShardCoordinator",
    "ShardTrace",
    "ShardWorker",
    "ShardedBackend",
    "ShardedDatabase",
    "WorkerPool",
    "partition_database",
    "relation_assignment",
    "route_for",
    "shard_database",
    "shard_of_relation",
    "shard_of_row",
]
