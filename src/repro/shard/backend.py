"""The ``sharded`` engine backend and the coordinator router.

The planner sees sharding as just a fourth :class:`EngineBackend` in its
cost argmin.  What makes that possible is the **router**: a process-wide
map from database *content fingerprints* to the coordinator holding that
database's partitions.  :meth:`ShardCoordinator.register_database` adds
a route; from then on any plain :class:`~repro.database.instance.Database`
with equal content — the object the planner is handed, which knows
nothing about shards — resolves to its coordinator, and the backend
becomes eligible whenever :mod:`repro.algebra.distribute` certifies the
query distributes.

The backend registers itself with the engine registry when the first
route appears and withdraws when the last coordinator closes, so
sessions that never shard keep the exact three-backend registry the
rest of the test suite assumes.

Cost model: a scatter's work is the *slowest shard's* work (shards run
in parallel processes) plus a per-participant round-trip overhead; a
route pays one shard plus one round trip.  Because the direct-cost
estimate is superlinear in database size (output domains × per-tuple
quantifier domains, both of which grow with the partition), the max
over 1/n-size partitions undercuts the single-process estimate on
exactly the workloads where fanning out wins, and the overhead term
keeps tiny queries on the in-process engines.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Optional

from repro.algebra.distribute import Decomposition, analyze
from repro.database.instance import Database
from repro.engine.backend import (
    EngineBackend,
    register_backend,
    restricted_output_gate,
    unregister_backend,
)
from repro.engine.cache import database_fingerprint, formula_key
from repro.engine.metrics import METRICS
from repro.engine.planner import estimate_direct_cost, _fmt_cost
from repro.errors import ShardError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.shard.coordinator import GatherResult, ShardCoordinator
    from repro.shard.partition import ShardedDatabase

__all__ = [
    "ShardTrace",
    "ShardedBackend",
    "route_for",
    "router_register",
    "router_unregister",
]

#: Estimated per-participating-shard round-trip cost, in the planner's
#: common units (direct-engine candidate checks).  One NDJSON round trip
#: plus result (de)serialization is real work; charging it keeps
#: millisecond-scale queries on the in-process backends.
SHARD_ROUNDTRIP_COST = 50_000.0

#: Slack the eligibility gate analyzes at.  ``eligible()`` has no slack
#: argument, so it uses the planner's auto-selection default
#: (``Planner._auto`` substitutes 0 when the caller passes none) — the
#: slack an auto-selected plan will actually carry.  ``estimate_cost``
#: and ``ShardCoordinator.execute`` analyze at the real plan slack.
_DEFAULT_PLAN_SLACK = 0

_ROUTER: dict[str, tuple["ShardCoordinator", "ShardedDatabase"]] = {}
_ROUTER_LOCK = threading.Lock()


def router_register(
    fingerprint: str, coordinator: "ShardCoordinator", sharded: "ShardedDatabase"
) -> None:
    """Make ``fingerprint`` resolve to ``coordinator`` (first route also
    registers the ``sharded`` backend with the engine registry)."""
    with _ROUTER_LOCK:
        was_empty = not _ROUTER
        _ROUTER[fingerprint] = (coordinator, sharded)
    if was_empty:
        register_backend(ShardedBackend(), replace=True)


def router_unregister(fingerprint: str) -> None:
    """Withdraw a route (last route out also unregisters the backend)."""
    with _ROUTER_LOCK:
        _ROUTER.pop(fingerprint, None)
        empty = not _ROUTER
    if empty:
        unregister_backend("sharded")


def route_for(
    database: Database,
) -> Optional[tuple["ShardCoordinator", "ShardedDatabase"]]:
    """The (coordinator, sharded database) owning ``database``'s content,
    or ``None`` when no live coordinator holds an equal database."""
    fingerprint = database_fingerprint(database)
    with _ROUTER_LOCK:
        return _ROUTER.get(fingerprint)


class ShardTrace:
    """EXPLAIN observer for sharded runs: captures the gather result."""

    def __init__(self) -> None:
        self.gather: Optional["GatherResult"] = None
        self.cached = False


class ShardedBackend(EngineBackend):
    """Scatter-gather execution over a :class:`ShardCoordinator`'s pool.

    Eligible only when (a) the database routes to a live coordinator,
    (b) the restricted-output gate passes (the shards evaluate with
    restricted semantics), and (c) the distributivity analysis finds a
    scatter certificate or a single-shard route — so auto-selection can
    never produce a wrong merged answer; non-distributing plans simply
    keep running in-process.
    """

    name = "sharded"
    priority = 30

    # ------------------------------------------------------------- planning

    def eligible(self, formula, structure, database):
        route = route_for(database)
        if route is None:
            return False, (
                "database is not registered with a shard coordinator"
            )
        ok, reason = restricted_output_gate(formula, database)
        if not ok:
            return ok, reason
        decomposition = self._decompose(
            formula, structure, route, _DEFAULT_PLAN_SLACK
        )
        if not decomposition.distributes:
            return False, f"plan does not distribute: {decomposition.reason}"
        return True, decomposition.reason

    def estimate_cost(self, formula, structure, database, slack, planner):
        route = route_for(database)
        if route is None:
            return float("inf")
        _, sharded = route
        decomposition = self._decompose(formula, structure, route, slack)
        if decomposition.mode == "scatter":
            # Parallel processes: wall-clock ≈ the slowest shard.
            per_part = max(
                self._part_cost(formula, structure, part, slack, planner)
                for part in sharded.parts
            )
            return per_part + SHARD_ROUNDTRIP_COST * sharded.shards
        if decomposition.mode == "route":
            part = sharded.parts[decomposition.shard or 0]
            return (
                self._part_cost(formula, structure, part, slack, planner)
                + SHARD_ROUNDTRIP_COST
            )
        return float("inf")

    @staticmethod
    def _part_cost(formula, structure, part, slack, planner) -> float:
        """One shard's estimated work: the worker plans for itself, so
        take the cheapest in-process backend on the partition (with the
        same ceiling/bias scaling the worker's own planner applies)."""
        from repro.engine.planner import estimate_automata_cost

        direct = estimate_direct_cost(formula, structure, part, slack)
        if direct > planner.ceiling:
            direct = float("inf")
        automata = estimate_automata_cost(formula, structure, part) * planner.bias
        return min(direct, automata)

    def prepare_forced(self, formula, structure, slack):
        # Shards evaluate with restricted semantics, so forcing mirrors a
        # forced direct engine: collapse NATURAL quantifiers first.
        from repro.eval.collapse import collapse

        collapsed = collapse(formula, structure, slack=1 if slack is None else slack)
        return (
            collapsed.formula,
            collapsed.slack,
            "engine forced by caller (formula collapsed)",
        )

    def chosen_reason(self, costs, planner):
        return (
            "plan distributes over shards: slowest-partition work "
            f"(≈{_fmt_cost(costs[self.name])} incl. fan-out overhead) "
            f"beats single-process enumeration "
            f"(≈{_fmt_cost(costs.get('direct', float('inf')))})"
        )

    @staticmethod
    def _decompose(formula, structure, route, slack) -> Decomposition:
        coordinator, sharded = route
        return analyze(
            formula,
            structure,
            sharded.database,
            slack=slack,
            relation_shards=(
                sharded.relation_shards
                if coordinator.scheme == "relation"
                else None
            ),
        )

    # ------------------------------------------------------------ execution

    def execute(self, plan, database, cache, observer=None):
        from repro.automatic.relation import RelationAutomaton
        from repro.eval.result import QueryResult

        route = route_for(database)
        if route is None:
            raise ShardError(
                "sharded plan but the database no longer routes to a "
                "coordinator (was it closed between planning and "
                "execution?)",
                retryable=False,
            )
        coordinator, sharded = route
        key = formula_key(
            plan.formula,
            plan.structure.name,
            plan.structure.alphabet.symbols,
            plan.slack,
            database_fingerprint(database),
            stage="sharded-result",
        )
        cached = cache.get(key)
        if cached is None:
            # Delta-forwarded versions: results cached on an ancestor
            # version stay exact while no forwarded delta touched the
            # query's relations (restricted quantifiers also need a
            # stable adom) — skip the whole scatter/gather round.
            from repro.delta.maintenance import promote_result

            cached = promote_result(cache, key, plan.formula)
        if cached is not None:
            if isinstance(observer, ShardTrace):
                observer.cached = True
            return QueryResult(*cached)
        gather = coordinator.execute(sharded, plan)
        if isinstance(observer, ShardTrace):
            observer.gather = gather
        relation = RelationAutomaton.from_tuples(
            plan.structure.alphabet, len(gather.columns), sorted(gather.rows)
        )
        result = QueryResult(gather.columns, relation)
        cache.put(key, (result.variables, result.relation))
        return result

    # -------------------------------------------------------------- explain

    def trace_observer(self):
        return ShardTrace()

    def trace_tree(self, plan, observer, seconds):
        from repro.engine.explain import ExplainNode, plan_tree_to_explain

        gather = getattr(observer, "gather", None)
        if gather is None:
            if getattr(observer, "cached", False):
                root = plan_tree_to_explain(plan.root)
                root.seconds = seconds
                root.cache_hit = True
                return root
            return None
        decomposition = gather.decomposition
        root = ExplainNode(
            f"gather[{decomposition.merge}]",
            "shard-gather",
            seconds=seconds,
            annotations={
                "mode": decomposition.mode,
                **(
                    {"certificate": decomposition.certificate}
                    if decomposition.certificate
                    else {}
                ),
                "shards": len(gather.shard_reports),
                "rows": len(gather.rows),
            },
        )
        for report in gather.shard_reports:
            notes: dict[str, object] = {"rows": report["rows"]}
            if report.get("engine"):
                notes["engine"] = report["engine"]
            if report.get("retried"):
                notes["retried"] = True
            root.children.append(
                ExplainNode(
                    f"shard[{report['shard']}]",
                    "shard-run",
                    seconds=(
                        report["exec_ms"] / 1000.0
                        if report.get("exec_ms") is not None
                        else None
                    ),
                    annotations=notes,
                )
            )
        return root
