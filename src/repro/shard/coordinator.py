"""The shard coordinator: decompose, scatter, gather, merge.

:class:`ShardCoordinator` owns a :class:`~repro.shard.pool.WorkerPool`
and the placement of every registered database's partitions on it.  For
each query it asks :func:`repro.algebra.distribute.analyze` how the
plan decomposes and executes accordingly:

``scatter``
    The query runs on **every** shard against its partition; the
    coordinator unions the row sets (dedup is free: rows are sets) and
    asserts the shards agreed on the output columns.

``route``
    Every relation the plan reads lives whole on one shard (by-relation
    partitioning, or a database-free query) — the query runs on that
    single worker, no merge needed.

``single``
    No distributivity certificate: the query runs against a lazily
    registered **full copy** of the database on worker 0.  Sharding
    never changes an answer; it only changes who computes it.

Failure semantics: a shard that is unreachable, dies mid-request, or
misses its per-shard deadline gets **one** retry — the coordinator
restarts the worker process, re-registers its partitions, and resends.
A second failure (or a structured error from the shard's own service
layer) raises :class:`~repro.errors.ShardError`; the gather never
silently drops a shard's rows.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.algebra.distribute import Decomposition, analyze
from repro.core.query import StringDatabase
from repro.database.instance import Database
from repro.engine.deadline import remaining as deadline_remaining
from repro.engine.metrics import METRICS
from repro.errors import ShardError
from repro.shard.partition import SCHEMES, ShardedDatabase, shard_database
from repro.shard.pool import ShardWorker, WorkerPool, gather_all

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.engine.planner import Plan

__all__ = ["GatherResult", "ShardCoordinator"]

#: Grace period (seconds) added to the coordinator-side wait on top of
#: the per-shard deadline: the worker enforces the deadline itself and
#: answers with a structured timeout, which carries more information
#: than a coordinator-side straggler kill; the straggler path is for
#: workers too wedged to answer at all.
STRAGGLER_GRACE = 2.0

#: Coordinator-side wait when the request carries no deadline at all —
#: a liveness backstop, generous enough for any benchmarked workload.
DEFAULT_SHARD_WAIT = 600.0


class GatherResult:
    """What a merged execution returns to the backend."""

    __slots__ = ("columns", "rows", "decomposition", "shard_reports")

    def __init__(self, columns, rows, decomposition, shard_reports):
        self.columns: tuple[str, ...] = columns
        self.rows: frozenset[tuple[str, ...]] = rows
        self.decomposition: Decomposition = decomposition
        #: One dict per participating shard: index, rows, exec_ms,
        #: queue_ms, engine, retried.
        self.shard_reports: list[dict] = shard_reports


class ShardCoordinator:
    """Partition registry + scatter-gather execution over a worker pool."""

    def __init__(
        self,
        shards: int = 4,
        scheme: str = "hash",
        request_timeout: Optional[float] = None,
        worker_engine: Optional[str] = None,
    ):
        if scheme not in SCHEMES:
            raise ShardError(
                f"unknown partitioning scheme {scheme!r} "
                f"(supported: {', '.join(SCHEMES)})",
                retryable=False,
            )
        self.scheme = scheme
        self.request_timeout = request_timeout
        #: Normally ``None`` — each worker's own planner picks the best
        #: engine for its partition.  Pinning it (e.g. ``"direct"``) makes
        #: every shard use one engine; the benchmark uses this for a
        #: controlled same-engine comparison.
        self.worker_engine = worker_engine
        self.pool = WorkerPool(shards)
        self._databases: dict[str, ShardedDatabase] = {}
        #: Database names whose full copy is registered on worker 0
        #: (cleared when worker 0 restarts).
        self._full_registered: set[str] = set()
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------- registry

    @property
    def shards(self) -> int:
        return len(self.pool)

    def database_names(self) -> list[str]:
        with self._lock:
            return sorted(self._databases)

    def get(self, name: str) -> Optional[ShardedDatabase]:
        with self._lock:
            return self._databases.get(name)

    def register_database(
        self, name: str, database: Union[Database, StringDatabase]
    ) -> ShardedDatabase:
        """Partition ``database``, push each part to its worker, and make
        the content fingerprint routable (the planner's ``sharded``
        backend becomes eligible for any equal-content ``Database``)."""
        from repro.shard.backend import router_register, router_unregister

        self._check_open()
        if "@" in name:
            # "@" is reserved for coordinator-internal worker-side names
            # (the single-shard fallback registers the full database as
            # "<name>@full" on worker 0); allowing it would let a user
            # database collide with a fallback copy.
            raise ShardError(
                f"invalid database name {name!r}: '@' is reserved for "
                "coordinator-internal names",
                retryable=False,
            )
        sharded = shard_database(name, database, self.shards, self.scheme)
        waiters = [
            self.pool.worker(i).submit(
                self._register_body(name, sharded.parts[i])
            )
            for i in range(self.shards)
        ]
        for i, waiter in enumerate(waiters):
            response = waiter.wait(START_UP_WAIT)
            if not response.get("ok"):
                raise ShardError(
                    f"shard {i} rejected partition of {name!r}: "
                    f"{response.get('error', {}).get('message', response)}",
                    retryable=False, shard=i,
                )
        with self._lock:
            previous = self._databases.get(name)
            self._databases[name] = sharded
            # The fallback copy (if any) described the previous content;
            # the next single-mode query re-registers it lazily.
            self._full_registered.discard(name)
            stale = (
                previous is not None
                and not any(
                    s.fingerprint == previous.fingerprint
                    for s in self._databases.values()
                )
            )
        router_register(sharded.fingerprint, self, sharded)
        if stale:
            # Replacing a name replaced its worker-side partitions too:
            # withdraw the old content's route so a Database holding the
            # previous content stops resolving to the new partitions.
            router_unregister(previous.fingerprint)
        METRICS.inc("shard.databases_registered")
        return sharded

    def unregister_database(self, name: str) -> bool:
        """Drop ``name``: withdraw its route, forget its partitions, and
        tell every worker to drop its part (and the worker-0 full copy).
        Returns whether the name was registered."""
        from repro.shard.backend import router_unregister

        self._check_open()
        with self._lock:
            sharded = self._databases.pop(name, None)
            if sharded is None:
                return False
            self._full_registered.discard(name)
            keep_route = any(
                s.fingerprint == sharded.fingerprint
                for s in self._databases.values()
            )
        if not keep_route:
            router_unregister(sharded.fingerprint)
        waiters = [
            self.pool.worker(i).submit({"op": "unregister_db", "name": name})
            for i in range(self.shards)
        ]
        waiters.append(
            self.pool.worker(0).submit(
                {"op": "unregister_db", "name": f"{name}@full"}
            )
        )
        for waiter in waiters:
            # Best-effort: a dead worker's copy dies with its process.
            try:
                waiter.wait(START_UP_WAIT)
            except ShardError:
                pass
        METRICS.inc("shard.databases_unregistered")
        return True

    def apply_delta(
        self, name: str, delta, new_database: Database
    ) -> ShardedDatabase:
        """Forward one row delta to the **owning** shards — no re-scatter.

        ``delta`` is an effective :class:`~repro.delta.Delta` and
        ``new_database`` the already-evolved whole database (its seeded
        chained fingerprint becomes the new route key).  Rows are split
        with the same deterministic partitioners registration used, so
        only shards that actually own changed rows see any traffic; each
        one gets ``insert``/``delete`` protocol ops and evolves its
        worker-side partition through its own delta store.  Deltas that
        add relations must go through :meth:`register_database` instead
        (new relations need a placement decision).

        The old fingerprint's route is withdrawn, mirroring
        re-registration semantics: in-flight sharded queries pinned to a
        pre-delta snapshot fail with a structured routing error rather
        than silently answering from post-delta partitions.
        """
        import dataclasses

        from repro.delta.store import chained_fingerprint, evolve_database
        from repro.engine.cache import database_fingerprint
        from repro.shard.backend import router_register, router_unregister
        from repro.shard.partition import shard_of_relation, shard_of_row

        self._check_open()
        with self._lock:
            sharded = self._databases.get(name)
        if sharded is None:
            raise ShardError(
                f"unknown sharded database {name!r}", retryable=False
            )
        shards = self.shards

        def owner(relation: str, row: tuple[str, ...]) -> int:
            if self.scheme == "hash":
                return shard_of_row(row, shards)
            if sharded.relation_shards is not None:
                return sharded.relation_shards[relation]
            return shard_of_relation(relation, shards)

        per_ins: list[dict[str, set]] = [dict() for _ in range(shards)]
        per_del: list[dict[str, set]] = [dict() for _ in range(shards)]
        for split, changes in ((per_ins, delta.inserts), (per_del, delta.deletes)):
            for relation, rows in changes:
                for row in rows:
                    split[owner(relation, row)].setdefault(relation, set()).add(row)

        # Pipelined forward: every owning shard's ops are on the wire
        # before the first acknowledgement is awaited.
        waiters = []
        for i in range(shards):
            for op, split in (("insert", per_ins[i]), ("delete", per_del[i])):
                for relation, rows in sorted(split.items()):
                    body = {
                        "op": op,
                        "db": name,
                        "relation": relation,
                        "rows": sorted(list(row) for row in rows),
                    }
                    waiters.append((i, self.pool.worker(i).submit(body)))
                    METRICS.inc("delta.shard_forwards")
        for i, waiter in waiters:
            response = waiter.wait(START_UP_WAIT)
            if not response.get("ok"):
                raise ShardError(
                    f"shard {i} rejected delta for {name!r}: "
                    f"{response.get('error', {}).get('message', response)}",
                    retryable=False, shard=i,
                )

        # Evolve the coordinator-side parts to match (shared frozensets,
        # chained part fingerprints: O(|delta|), no part rehashing).
        parts = list(sharded.parts)
        part_fps = list(sharded.part_fingerprints)
        digest = delta.digest()
        for i in range(shards):
            if not per_ins[i] and not per_del[i]:
                continue
            part_fps[i] = chained_fingerprint(part_fps[i], digest)
            parts[i] = evolve_database(
                parts[i],
                {r: frozenset(rows) for r, rows in per_ins[i].items()},
                {r: frozenset(rows) for r, rows in per_del[i].items()},
                fingerprint=part_fps[i],
            )
        new_fingerprint = database_fingerprint(new_database)
        evolved = dataclasses.replace(
            sharded,
            database=new_database,
            fingerprint=new_fingerprint,
            parts=tuple(parts),
            part_fingerprints=tuple(part_fps),
        )
        with self._lock:
            self._databases[name] = evolved
            # The worker-0 full copy (if any) predates the delta.
            self._full_registered.discard(name)
            stale = not any(
                s.fingerprint == sharded.fingerprint
                for s in self._databases.values()
            )
        router_register(evolved.fingerprint, self, evolved)
        if stale:
            router_unregister(sharded.fingerprint)
        METRICS.inc("shard.deltas_forwarded")
        return evolved

    @staticmethod
    def _register_body(name: str, part: Database) -> dict:
        schema = {
            rel: part.schema.arity(rel) for rel in part.schema.relation_names
        }
        return {
            "op": "register_db",
            "name": name,
            "db": {
                "alphabet": "".join(part.alphabet.symbols),
                "relations": {
                    rel: sorted(list(row) for row in part.relation(rel))
                    for rel in part.relation_names
                },
                "schema": schema,
            },
        }

    # ------------------------------------------------------------ execution

    def execute(
        self,
        sharded: ShardedDatabase,
        plan: "Plan",
        timeout: Optional[float] = None,
    ) -> GatherResult:
        """Decompose ``plan`` and run it across the pool (see class doc)."""
        self._check_open()
        decomposition = analyze(
            plan.formula,
            plan.structure,
            sharded.database,
            plan.slack,
            relation_shards=(
                sharded.relation_shards if self.scheme == "relation" else None
            ),
        )
        t0 = time.perf_counter()
        try:
            if decomposition.mode == "scatter":
                METRICS.inc("shard.scatters")
                targets = list(range(self.shards))
                result = self._run_on(
                    sharded, plan, targets, sharded.name, decomposition, timeout
                )
            elif decomposition.mode == "route":
                METRICS.inc("shard.routes")
                shard = decomposition.shard or 0
                result = self._run_on(
                    sharded, plan, [shard], sharded.name, decomposition, timeout
                )
            else:
                METRICS.inc("shard.fallbacks")
                full_name = self._ensure_full_copy(sharded)
                result = self._run_on(
                    sharded, plan, [0], full_name, decomposition, timeout
                )
        except ShardError:
            METRICS.inc("shard.failures")
            raise
        finally:
            METRICS.add_time("shard.gather_seconds", time.perf_counter() - t0)
        METRICS.inc("shard.rows_merged", len(result.rows))
        return result

    def _run_on(
        self,
        sharded: ShardedDatabase,
        plan: "Plan",
        targets: list[int],
        db_name: str,
        decomposition: Decomposition,
        timeout: Optional[float],
    ) -> GatherResult:
        budget = self._budget(timeout)
        body = {
            "op": "run",
            "query": str(plan.formula),
            "db": db_name,
            "structure": plan.structure.name,
            "slack": plan.slack,
        }
        if self.worker_engine is not None:
            body["engine"] = self.worker_engine
        if budget is not None:
            body["timeout_ms"] = budget * 1000.0
        wait = (
            budget + STRAGGLER_GRACE if budget is not None else DEFAULT_SHARD_WAIT
        )
        # Pipelined scatter: every request is on the wire before the
        # first gather blocks, so shard processes overlap fully.
        waiters = {}
        responses: dict[int, Any] = {}
        for i in targets:
            try:
                waiters[i] = self.pool.worker(i).submit(body)
            except ShardError as exc:
                responses[i] = exc
        # Concurrent gather under ONE shared budget: the slowest shard
        # bounds the wall clock, not the sum of per-shard waits.
        responses.update(gather_all(waiters, wait))
        # One retry round, itself concurrent: restart every failed slot,
        # re-register its partitions, resend them all, gather again with
        # whatever budget remains.  A shard that fails its retry raises.
        retried_shards = {
            i for i in targets if isinstance(responses[i], ShardError)
        }
        if retried_shards:
            for i in sorted(retried_shards):
                METRICS.inc("shard.retries")
                self._restart_and_reload(i)
            retry_budget = self._budget(timeout)
            retry_body = dict(body)
            if retry_budget is not None:
                retry_body["timeout_ms"] = retry_budget * 1000.0
            retry_wait = (
                retry_budget + STRAGGLER_GRACE
                if retry_budget is not None else DEFAULT_SHARD_WAIT
            )
            retry_waiters = {}
            for i in sorted(retried_shards):
                retry_waiters[i] = self.pool.worker(i).submit(retry_body)
            for i, outcome in gather_all(retry_waiters, retry_wait).items():
                if isinstance(outcome, ShardError):
                    raise outcome
                responses[i] = outcome
        reports: list[dict] = []
        merged: set[tuple[str, ...]] = set()
        columns: Optional[tuple[str, ...]] = None
        for i in targets:
            retried = i in retried_shards
            response = responses[i]
            if not response.get("ok"):
                error = response.get("error", {})
                raise ShardError(
                    f"shard {i} failed: {error.get('message', response)}",
                    retryable=bool(error.get("retryable", False)),
                    shard=i,
                )
            if not response.get("finite", True):
                raise ShardError(
                    f"shard {i} reported an infinite result; a sharded "
                    "merge cannot union samples soundly",
                    retryable=False, shard=i,
                )
            shard_columns = tuple(response.get("columns") or ())
            if columns is None:
                columns = shard_columns
            elif columns != shard_columns:
                raise ShardError(
                    f"shard {i} answered columns {list(shard_columns)} "
                    f"but shard {targets[0]} answered {list(columns)}",
                    retryable=False, shard=i,
                )
            rows = [tuple(row) for row in response.get("rows") or []]
            merged.update(rows)
            reports.append({
                "shard": i,
                "rows": len(rows),
                "exec_ms": response.get("exec_ms"),
                "queue_ms": response.get("queue_ms"),
                "engine": response.get("engine"),
                "retried": retried,
            })
        assert columns is not None  # targets is never empty
        return GatherResult(columns, frozenset(merged), decomposition, reports)

    # -------------------------------------------------------------- helpers

    def _budget(self, timeout: Optional[float]) -> Optional[float]:
        """Per-shard deadline: the explicit timeout, else the remaining
        budget of the caller's ambient deadline scope, else the
        coordinator default.  Shards run in parallel, so each gets the
        full remaining budget, not a fraction."""
        if timeout is not None:
            return timeout
        ambient = deadline_remaining()
        if ambient is not None:
            return max(ambient, 0.001)
        return self.request_timeout

    def _ensure_full_copy(self, sharded: ShardedDatabase) -> str:
        """Register the whole database on worker 0 (idempotent, lazy).

        ``register_database`` rejects ``@`` in user names, so the
        ``<name>@full`` worker-side name can never collide with a
        registered database's shard-0 partition."""
        full_name = f"{sharded.name}@full"
        with self._lock:
            have = sharded.name in self._full_registered
        if not have:
            response = self.pool.worker(0).request(
                self._register_body(full_name, sharded.database),
                START_UP_WAIT,
            )
            if not response.get("ok"):
                raise ShardError(
                    f"worker 0 rejected the full copy of {sharded.name!r}: "
                    f"{response}", shard=0,
                )
            with self._lock:
                self._full_registered.add(sharded.name)
        return full_name

    def _restart_and_reload(self, shard: int) -> None:
        """Fresh process for ``shard`` + re-register its partitions."""
        self.pool.restart(shard)
        if shard == 0:
            with self._lock:
                self._full_registered.clear()
        with self._lock:
            databases = list(self._databases.items())
        for name, sharded in databases:
            response = self.pool.worker(shard).request(
                self._register_body(name, sharded.parts[shard]),
                START_UP_WAIT,
            )
            if not response.get("ok"):
                raise ShardError(
                    f"restarted shard {shard} rejected partition of "
                    f"{name!r}: {response}", shard=shard,
                )

    def _check_open(self) -> None:
        if self._closed:
            raise ShardError("shard coordinator is closed", retryable=False)

    # ------------------------------------------------------------ lifecycle

    def stats(self) -> dict:
        """Topology + placement + ``shard.*`` counters (for ``stats`` ops)."""
        snapshot = METRICS.snapshot()
        with self._lock:
            databases = {
                name: {
                    "scheme": sharded.scheme,
                    "partition_sizes": sharded.part_sizes(),
                    "fingerprint": sharded.fingerprint,
                }
                for name, sharded in self._databases.items()
            }
        return {
            "shards": self.shards,
            "scheme": self.scheme,
            "alive": [w.alive for w in self.pool.workers],
            "databases": databases,
            "counters": {
                name: value for name, value in snapshot.items()
                if name.startswith("shard.")
            },
        }

    def close(self) -> None:
        """Stop the pool and withdraw this coordinator's routes."""
        from repro.shard.backend import router_unregister

        if self._closed:
            return
        self._closed = True
        with self._lock:
            databases = list(self._databases.values())
            self._databases.clear()
        for sharded in databases:
            router_unregister(sharded.fingerprint)
        self.pool.close()

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Wait (seconds) on registration/administrative round trips.
START_UP_WAIT = 60.0
