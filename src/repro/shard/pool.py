"""Shard worker processes: ``python -m repro serve --stdio`` under a pipe.

Each :class:`ShardWorker` is a real operating-system process running the
unmodified NDJSON service loop (:func:`repro.service.server.serve_stdio`)
— its own interpreter, its own GIL, its own automaton/plan caches.  The
coordinator talks to it over stdin/stdout with the wire protocol used by
every other deployment of the service; nothing in the worker knows it is
a shard.

Concurrency model: requests carry monotonically increasing ids; a single
reader thread per worker demultiplexes response lines back to waiting
callers, so any number of coordinator threads can have requests in
flight on the same worker (the worker itself runs one evaluation thread
— parallelism comes from having many workers).  A worker that exits or
emits garbage fails *all* of its in-flight requests with a retryable
:class:`~repro.errors.ShardError`; the pool can then
:meth:`~WorkerPool.restart` the slot and the coordinator re-registers
its partitions.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from typing import Any, Optional, Union

from repro.engine.metrics import METRICS
from repro.errors import ShardError

__all__ = ["ShardWorker", "WorkerPool", "gather_all"]

#: Seconds to wait for a worker's readiness ping at spawn.
START_TIMEOUT = 30.0


def _src_root() -> str:
    """The directory to put on the worker's ``PYTHONPATH`` (``…/src``)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class _Waiter:
    """One in-flight request: an event the reader thread completes."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[dict] = None
        self.error: Optional[ShardError] = None

    def wait(self, timeout: Optional[float]) -> dict:
        if not self.event.wait(timeout):
            raise ShardError(
                f"shard request still pending after {timeout:.6g}s "
                "(straggler)",
                retryable=True,
            )
        if self.error is not None:
            raise self.error
        assert self.response is not None
        return self.response


def gather_all(
    waiters: dict[int, _Waiter], timeout: Optional[float]
) -> dict[int, Union[dict, ShardError]]:
    """Collect every waiter under **one shared budget**.

    The responses complete concurrently (each worker has its own reader
    thread), so waiting on them in turn while decrementing a single
    deadline is a true concurrent gather: total wall clock is the
    *slowest* shard bounded by ``timeout`` — not, as with a per-waiter
    budget, up to ``len(waiters) × timeout`` when several shards
    straggle at once.  Failures don't raise; each slot maps to either
    the response dict or the :class:`~repro.errors.ShardError` that
    sank it, so the caller can restart and retry every failed shard in
    one concurrent round instead of serially per shard.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    results: dict[int, Union[dict, ShardError]] = {}
    for index, waiter in waiters.items():
        remaining = (
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        try:
            results[index] = waiter.wait(remaining)
        except ShardError as exc:
            results[index] = exc
    return results


class ShardWorker:
    """One shard process plus its demultiplexing reader thread."""

    def __init__(self, index: int, service_workers: int = 1):
        self.index = index
        argv = [
            sys.executable, "-m", "repro", "serve", "--stdio",
            "--workers", str(service_workers),
        ]
        env = dict(os.environ)
        src = _src_root()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        self.process = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        self._lock = threading.Lock()
        self._counter = 0
        self._waiters: dict[int, _Waiter] = {}
        self._dead: Optional[str] = None
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{index}-reader", daemon=True
        )
        self._reader.start()
        METRICS.inc("shard.workers_started")
        # Readiness barrier: the first response also absorbs interpreter
        # start-up, so it never counts against a query's own deadline.
        pong = self.request({"op": "ping"}, timeout=START_TIMEOUT)
        if not pong.get("pong"):
            raise ShardError(
                f"shard {index} failed its readiness ping: {pong!r}"
            )

    # ------------------------------------------------------------- plumbing

    @property
    def alive(self) -> bool:
        return self._dead is None and self.process.poll() is None

    def submit(self, body: dict[str, Any]) -> _Waiter:
        """Write one request line; the waiter completes on its response."""
        waiter = _Waiter()
        with self._lock:
            if self._dead is not None:
                raise ShardError(
                    f"shard {self.index} is down: {self._dead}", retryable=True,
                    shard=self.index,
                )
            self._counter += 1
            request_id = self._counter
            self._waiters[request_id] = waiter
            line = json.dumps({**body, "id": request_id})
            try:
                assert self.process.stdin is not None
                self.process.stdin.write(line + "\n")
                self.process.stdin.flush()
            except (BrokenPipeError, OSError, ValueError) as exc:
                self._waiters.pop(request_id, None)
                self._fail_locked(f"write failed: {exc}")
                raise ShardError(
                    f"shard {self.index} is down: write failed ({exc})",
                    retryable=True, shard=self.index,
                ) from None
        METRICS.inc("shard.requests")
        return waiter

    def request(
        self, body: dict[str, Any], timeout: Optional[float] = None
    ) -> dict:
        """Submit and wait (transport errors raise, protocol errors don't:
        a well-formed ``{"ok": false, ...}`` response is returned as-is)."""
        return self.submit(body).wait(timeout)

    def _read_loop(self) -> None:
        stdout = self.process.stdout
        assert stdout is not None
        for line in stdout:
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                with self._lock:
                    self._fail_locked(f"sent a non-JSON line: {line[:80]!r}")
                return
            waiter = None
            with self._lock:
                request_id = obj.get("id")
                if isinstance(request_id, int):
                    waiter = self._waiters.pop(request_id, None)
            if waiter is not None:
                waiter.response = obj
                waiter.event.set()
        with self._lock:
            self._fail_locked("process exited")

    def _fail_locked(self, why: str) -> None:
        """Mark dead and fail every in-flight request (lock held)."""
        if self._dead is None:
            self._dead = why
            METRICS.inc("shard.worker_deaths")
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            waiter.error = ShardError(
                f"shard {self.index} died mid-request: {why}",
                retryable=True, shard=self.index,
            )
            waiter.event.set()

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Best-effort graceful shutdown, then terminate."""
        with self._lock:
            if self._dead is None:
                try:
                    assert self.process.stdin is not None
                    self.process.stdin.write(
                        json.dumps({"op": "shutdown", "drain": False}) + "\n"
                    )
                    self.process.stdin.flush()
                    self.process.stdin.close()
                except (BrokenPipeError, OSError, ValueError):
                    pass
        try:
            self.process.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
        with self._lock:
            self._fail_locked("closed")


class WorkerPool:
    """A fixed-size array of :class:`ShardWorker` slots."""

    def __init__(self, shards: int):
        if shards < 1:
            raise ShardError(f"shards must be >= 1, got {shards}",
                             retryable=False)
        self._lock = threading.Lock()
        self.workers: list[ShardWorker] = []
        try:
            for i in range(shards):
                self.workers.append(ShardWorker(i))
        except Exception:
            for w in self.workers:
                w.close()
            raise

    def __len__(self) -> int:
        return len(self.workers)

    def worker(self, shard: int) -> ShardWorker:
        return self.workers[shard]

    def restart(self, shard: int) -> ShardWorker:
        """Replace a dead (or wedged) worker slot with a fresh process.

        The caller owns re-registering the slot's partitions — the pool
        knows transport, not data placement.
        """
        with self._lock:
            old = self.workers[shard]
            old.close()
            fresh = ShardWorker(shard)
            self.workers[shard] = fresh
        METRICS.inc("shard.worker_restarts")
        return fresh

    def close(self) -> None:
        with self._lock:
            workers, self.workers = self.workers, []
        for w in workers:
            w.close()
