"""Ehrenfeucht-Fraisse game machinery for the paper's inexpressibility proofs."""

from repro.games.ef import (
    FiniteStructure,
    distinguishing_rank,
    duplicator_wins,
    string_structure,
)

__all__ = [
    "FiniteStructure",
    "distinguishing_rank",
    "duplicator_wins",
    "string_structure",
]
