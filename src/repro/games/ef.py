"""Ehrenfeucht-Fraisse games on finite relational structures.

The paper's inexpressibility results (Proposition 2's proof, Proposition 6,
the separations behind Figure 1) are EF-game arguments.  This module makes
the game itself executable: :func:`duplicator_wins` decides whether the
duplicator survives ``k`` rounds on two finite structures, and
:func:`distinguishing_rank` finds the least number of rounds the spoiler
needs.

``k``-round duplicator win is equivalent to agreement on all first-order
sentences of quantifier rank ``k`` (over the structures' shared relational
signature), so a duplicator win certifies bounded-rank indistinguishability
— which is how the tests demonstrate Proposition 6 (finiteness is not
definable in RC(S)) on finite approximations of the paper's two databases.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence


@dataclass(frozen=True)
class FiniteStructure:
    """A finite relational structure: a universe plus named relations."""

    universe: tuple
    relations: tuple[tuple[str, frozenset], ...]  # name -> set of tuples

    @classmethod
    def build(cls, universe, relations: dict[str, set]) -> "FiniteStructure":
        return cls(
            tuple(universe),
            tuple(sorted((n, frozenset(map(tuple, ts))) for n, ts in relations.items())),
        )

    def relation(self, name: str) -> frozenset:
        for n, ts in self.relations:
            if n == name:
                return ts
        raise KeyError(name)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.relations)


def _partial_isomorphism(
    a: FiniteStructure, b: FiniteStructure, pairs: tuple[tuple, ...]
) -> bool:
    """Do the picked pairs form a partial isomorphism?

    Checks injectivity/functionality and preservation of every relation in
    both directions over the picked elements.
    """
    left = [p[0] for p in pairs]
    right = [p[1] for p in pairs]
    # functionality and injectivity
    mapping: dict = {}
    inverse: dict = {}
    for x, y in pairs:
        if mapping.get(x, y) != y or inverse.get(y, x) != x:
            return False
        mapping[x] = y
        inverse[y] = x
    for name in a.relation_names:
        ra = a.relation(name)
        rb = b.relation(name)
        arity = None
        for t in ra | rb:
            arity = len(t)
            break
        if arity is None:
            continue
        # Enumerate tuples over picked elements only.
        import itertools

        for combo in itertools.product(range(len(pairs)), repeat=arity):
            ta = tuple(left[i] for i in combo)
            tb = tuple(right[i] for i in combo)
            if (ta in ra) != (tb in rb):
                return False
    return True


def duplicator_wins(
    a: FiniteStructure,
    b: FiniteStructure,
    rounds: int,
    pairs: tuple[tuple, ...] = (),
) -> bool:
    """Does the duplicator win the ``rounds``-round EF game from ``pairs``?

    Exponential in ``rounds``; intended for the small structures of the
    paper's arguments.  Results are memoized per position.
    """
    memo: dict = {}

    def play(position: tuple[tuple, ...], remaining: int) -> bool:
        if not _partial_isomorphism(a, b, position):
            return False
        if remaining == 0:
            return True
        key = (frozenset(position), remaining)
        if key in memo:
            return memo[key]
        ok = True
        # Spoiler plays in A: duplicator must answer in B; and vice versa.
        for x in a.universe:
            if not any(
                play(position + ((x, y),), remaining - 1) for y in b.universe
            ):
                ok = False
                break
        if ok:
            for y in b.universe:
                if not any(
                    play(position + ((x, y),), remaining - 1) for x in a.universe
                ):
                    ok = False
                    break
        memo[key] = ok
        return ok

    return play(pairs, rounds)


def distinguishing_rank(
    a: FiniteStructure, b: FiniteStructure, max_rounds: int
) -> Optional[int]:
    """Least ``k <= max_rounds`` with a spoiler win, or ``None``."""
    for k in range(max_rounds + 1):
        if not duplicator_wins(a, b, k):
            return k
    return None


# ---------------------------------------------------------------- builders


def string_structure(
    strings: Sequence[str],
    alphabet_symbols: Sequence[str],
    db: Sequence[str] = (),
) -> FiniteStructure:
    """A finite S-structure on a set of strings.

    Relations: the prefix order ``prefix``, the one-symbol extension
    ``ext1``, the last-symbol predicates ``last_a``, and a unary predicate
    ``U`` marking database membership.  Restricting S to a prefix-closed
    finite universe preserves the atomic S-relations exactly, which is what
    the paper's game arguments play on.
    """
    universe = tuple(sorted(set(strings), key=lambda s: (len(s), s)))
    relations: dict[str, set] = {
        "prefix": {(x, y) for x in universe for y in universe if y.startswith(x)},
        "ext1": {
            (x, y)
            for x in universe
            for y in universe
            if len(y) == len(x) + 1 and y.startswith(x)
        },
        "U": {(s,) for s in db if s in set(universe)},
    }
    for a in alphabet_symbols:
        relations[f"last_{a}"] = {(s,) for s in universe if s.endswith(a) and s}
    return FiniteStructure.build(universe, relations)
