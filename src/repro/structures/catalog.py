"""Factories for the paper's structures.

========  ===============================================  ==============
factory   signature                                        paper section
========  ===============================================  ==============
S         ``<<=``, ``L_a`` (+ definable: lex order,        Section 4
          ``l_a``, ``^``, constants, star-free P_L)
S_len     S + ``el`` (+ definable: ``f_a``, ``TRIM_a``,    Section 4
          all regular P_L / SIMILAR patterns)
S_left    S + ``f_a`` and ``TRIM_a``                       Section 7
S_reg     S + ``P_L`` for every regular ``L``              Section 7
========  ===============================================  ==============

Derived operations the paper proves definable are admitted directly in the
corresponding signature (e.g. lexicographic order in S, ``f_a`` in S_len):
this keeps queries readable without changing expressive power.
"""

from __future__ import annotations

from repro.logic.formulas import QuantKind
from repro.logic.terms import AddFirst, AddLast, InsertAt, Lcp, TrimFirst
from repro.strings.alphabet import Alphabet
from repro.structures.base import StringStructure, _LEFT_GRAPHS, _S_GRAPHS, _S_PREDS


def S(alphabet: Alphabet) -> StringStructure:
    """The base structure ``S = (Sigma*, <<=, (L_a))`` of Section 4.

    Covers SQL ``LIKE``, lexicographic ordering, constant-length substring
    tests and TRIM TRAILING; definable subsets of ``Sigma*`` are exactly
    the star-free languages.
    """
    return StringStructure(
        name="S",
        alphabet=alphabet,
        predicates=_S_PREDS | _S_GRAPHS | frozenset(["matches", "psuffix"]),
        term_functions=frozenset([AddLast, Lcp]),
        pattern_scope="star-free",
        restricted_kind=QuantKind.PREFIX,
        definable_language_class="star-free",
    )


def S_len(alphabet: Alphabet) -> StringStructure:
    """``S_len = (Sigma*, <<=, (L_a), el)`` of Section 4.

    Adds string-length comparison; covers SQL3 ``SIMILAR`` (grep) and
    adding/trimming symbols on both sides.  Definable subsets of
    ``Sigma*`` are exactly the regular languages; data complexity climbs
    into the polynomial hierarchy (Theorem 2, Proposition 5).
    """
    return StringStructure(
        name="S_len",
        alphabet=alphabet,
        predicates=(
            _S_PREDS
            | _S_GRAPHS
            | _LEFT_GRAPHS
            | frozenset(["el", "len_le", "len_lt", "matches", "psuffix"])
        ),
        term_functions=frozenset([AddLast, AddFirst, TrimFirst, Lcp]),
        pattern_scope="regular",
        restricted_kind=QuantKind.LENGTH,
        definable_language_class="regular",
    )


def S_left(alphabet: Alphabet) -> StringStructure:
    """``S_left = (Sigma*, <<=, (l_a), (f_a))`` of Section 7.

    S plus add/trim of *leading* characters; keeps AC0 data complexity and
    star-free definability of languages while being strictly more
    expressive than S on higher-arity relations.
    """
    return StringStructure(
        name="S_left",
        alphabet=alphabet,
        predicates=_S_PREDS | _S_GRAPHS | _LEFT_GRAPHS | frozenset(["matches", "psuffix"]),
        term_functions=frozenset([AddLast, AddFirst, TrimFirst, Lcp]),
        pattern_scope="star-free",
        restricted_kind=QuantKind.PREFIX,
        definable_language_class="star-free",
    )


def S_reg(alphabet: Alphabet) -> StringStructure:
    """``S_reg = (Sigma*, <<=, (L_a), (P_L) for regular L)`` of Section 7.

    S plus full regular-expression pattern matching; NC1 data complexity,
    regular definability of languages, but no ``f_a`` and no length
    comparison.
    """
    return StringStructure(
        name="S_reg",
        alphabet=alphabet,
        predicates=_S_PREDS | _S_GRAPHS | frozenset(["matches", "psuffix"]),
        term_functions=frozenset([AddLast, Lcp]),
        pattern_scope="regular",
        restricted_kind=QuantKind.PREFIX,
        definable_language_class="regular",
    )


def S_insert(alphabet: Alphabet) -> StringStructure:
    """EXTENSION (paper Section 8, future work): S plus positional insertion.

    The conclusion of the paper proposes "an extension of RC(S) in the
    spirit of RC(S_left) by allowing inserting characters at arbitrary
    position in a string x, specified by a prefix of x".  This structure
    realizes it: the term ``insert_a(x, p)`` (see
    :class:`~repro.logic.terms.InsertAt`) inserts ``a`` right after the
    prefix ``p`` of ``x``.  Its graph is synchronized-rational, so the
    automata engine remains exact; ``insert_a(x, eps) = f_a(x)`` and
    ``insert_a(x, x) = l_a(x)``, so S_insert extends S_left's vocabulary.

    Not part of the paper's proven results: collapse/safety properties are
    conjectured by analogy with S_left and validated empirically in the
    tests, not proved.  Caveat: a single insertion can move a string far
    from ``prefix(adom)`` in the ``d``-distance of Lemma 1, so the PREFIX
    output domain of the *direct* engine does not enumerate insertion
    outputs — use the exact automata engine for open S_insert queries
    (this is precisely the sort of complication that made the paper's
    Theorem 7 for S_left "considerably more work").
    """
    return StringStructure(
        name="S_insert",
        alphabet=alphabet,
        predicates=(
            _S_PREDS
            | _S_GRAPHS
            | _LEFT_GRAPHS
            | frozenset(["graph_insert_at", "matches", "psuffix"])
        ),
        term_functions=frozenset([AddLast, AddFirst, TrimFirst, InsertAt, Lcp]),
        pattern_scope="star-free",
        restricted_kind=QuantKind.PREFIX,
        definable_language_class="star-free",
    )


#: All four tame structures, in increasing-expressiveness reading order
#: (plus the Section 8 extension).
FACTORIES = {
    "S": S,
    "S_left": S_left,
    "S_reg": S_reg,
    "S_len": S_len,
    "S_insert": S_insert,
}


def by_name(name: str, alphabet: Alphabet) -> StringStructure:
    """Look up a structure factory by its paper name."""
    try:
        return FACTORIES[name](alphabet)
    except KeyError:
        raise ValueError(f"unknown structure {name!r}; choose from {sorted(FACTORIES)}") from None
