"""The paper's string structures S, S_len, S_left, S_reg."""

from repro.structures.base import StringStructure
from repro.structures.catalog import (
    FACTORIES,
    S,
    S_insert,
    S_left,
    S_len,
    S_reg,
    by_name,
)

__all__ = [
    "FACTORIES",
    "S",
    "S_insert",
    "S_left",
    "S_len",
    "S_reg",
    "StringStructure",
    "by_name",
]
