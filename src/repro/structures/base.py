"""The string structures of the paper as first-class objects.

A :class:`StringStructure` bundles

* a *signature policy*: which interpreted predicates and term functions a
  formula may use (the paper's languages are *defined* by their signatures,
  so RC(S) queries must not mention ``el``, RC(S_reg) must not mention
  ``f_a``, and pattern predicates over S must be star-free);
* *concrete semantics*: evaluate an atom on actual strings;
* an *automatic presentation*: each atom as a
  :class:`~repro.automatic.relation.RelationAutomaton`;
* the *restricted quantifier kind* licensed by the structure's collapse
  theorem (PREFIX for S/S_left/S_reg via Theorem 1/6, LENGTH for S_len via
  Proposition 4);
* the class of definable subsets of ``Sigma*`` ("star-free" or "regular",
  Sections 4 and 7).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.automata import compile_regex, is_star_free
from repro.automata.dfa import DFA
from repro.automatic import presentations as pres
from repro.automatic.relation import RelationAutomaton
from repro.errors import SignatureError
from repro.logic.formulas import Atom, Exists, Forall, Formula, QuantKind, RelAtom
from repro.logic.terms import AddFirst, AddLast, Lcp, StrConst, Term, TrimFirst, Var
from repro.strings import ops as strops
from repro.strings.alphabet import Alphabet

#: Predicates available in the base structure S (and hence everywhere).
_S_PREDS = frozenset(
    ["eq", "prefix", "sprefix", "ext1", "last", "lex_le", "lex_lt"]
)
#: Graph atoms introduced by term flattening, grouped by the function.
_S_GRAPHS = frozenset(["graph_add_last", "graph_lcp", "graph_const"])
_LEFT_GRAPHS = frozenset(["graph_add_first", "graph_trim_first"])


@dataclass(frozen=True)
class StringStructure:
    """One of the paper's structures over ``Sigma*``.

    Use the factories in :mod:`repro.structures.catalog` (:func:`S`,
    :func:`S_len`, :func:`S_left`, :func:`S_reg`) rather than constructing
    directly.
    """

    name: str
    alphabet: Alphabet
    predicates: frozenset[str]
    term_functions: frozenset[type]
    pattern_scope: str  # "star-free", "regular", or "none"
    restricted_kind: QuantKind
    definable_language_class: str  # "star-free" or "regular"

    # ------------------------------------------------------------ signature

    def allows_predicate(self, pred: str) -> bool:
        return pred in self.predicates

    def check_formula(self, formula: Formula) -> Formula:
        """Raise :class:`SignatureError` if the formula leaves the signature.

        Returns the formula unchanged for chaining.
        """
        for sub in formula.walk():
            if isinstance(sub, Atom):
                if not self.allows_predicate(sub.pred):
                    raise SignatureError(
                        f"predicate {sub.pred!r} is not in the signature of {self.name}"
                    )
                if sub.pred in ("matches", "psuffix"):
                    self._check_pattern(sub.param or "")
                for t in sub.args:
                    self._check_term(t)
            elif isinstance(sub, RelAtom):
                for t in sub.args:
                    self._check_term(t)
        return formula

    def _check_term(self, term: Term) -> None:
        if isinstance(term, (Var, StrConst)):
            return
        if type(term) not in self.term_functions:
            raise SignatureError(
                f"term function {type(term).__name__} is not available in {self.name}"
            )
        for child in _term_children(term):
            self._check_term(child)

    def _check_pattern(self, regex: str) -> None:
        if self.pattern_scope == "regular":
            return
        if self.pattern_scope == "none":
            raise SignatureError(f"{self.name} has no pattern predicates")
        if not _pattern_is_star_free(self.alphabet.symbols, regex):
            raise SignatureError(
                f"pattern {regex!r} is not star-free, so it is outside {self.name} "
                "(use S_reg or S_len for general regular patterns)"
            )

    # ------------------------------------------------------------ semantics

    def eval_atom(self, atom: Atom, assignment: dict[str, str]) -> bool:
        """Concrete truth value of an interpreted atom under an assignment."""
        values = [t.evaluate(assignment) for t in atom.args]
        return self._eval_pred(atom.pred, values, atom.param)

    def _eval_pred(self, pred: str, values: list[str], param: Optional[str]) -> bool:
        if pred == "eq":
            return values[0] == values[1]
        if pred == "prefix":
            return strops.is_prefix(values[0], values[1])
        if pred == "sprefix":
            return strops.is_strict_prefix(values[0], values[1])
        if pred == "ext1":
            return strops.extends_by_one(values[0], values[1])
        if pred == "last":
            return strops.last_symbol_is(values[0], param or "")
        if pred == "el":
            return len(values[0]) == len(values[1])
        if pred == "len_le":
            return len(values[0]) <= len(values[1])
        if pred == "len_lt":
            return len(values[0]) < len(values[1])
        if pred == "lex_le":
            return strops.lex_le(values[0], values[1], self.alphabet)
        if pred == "lex_lt":
            return strops.lex_lt(values[0], values[1], self.alphabet)
        if pred == "matches":
            return self.pattern_dfa(param or "").accepts(values[0])
        if pred == "psuffix":
            x, y = values
            return y.startswith(x) and self.pattern_dfa(param or "").accepts(y[len(x):])
        if pred == "graph_add_last":
            return values[1] == values[0] + (param or "")
        if pred == "graph_add_first":
            return values[1] == (param or "") + values[0]
        if pred == "graph_trim_first":
            return values[1] == strops.trim_first(values[0], param or "")
        if pred == "graph_insert_at":
            x, p, y = values
            if x.startswith(p):
                return y == p + (param or "") + x[len(p):]
            return y == ""
        if pred == "graph_lcp":
            return values[2] == strops.lcp(values[0], values[1])
        if pred == "graph_const":
            return values[0] == (param or "")
        raise SignatureError(f"unknown predicate {pred!r}")

    def pattern_dfa(self, regex: str) -> DFA:
        """Compiled (minimal) DFA of a pattern parameter, cached."""
        return _pattern_dfa(self.alphabet.symbols, regex)

    # --------------------------------------------------------- presentation

    def atom_relation(self, atom: Atom) -> RelationAutomaton:
        """The convolution automaton of an interpreted atom.

        Requires all atom arguments to be plain variables (run
        :func:`repro.logic.flatten_terms` first); tracks follow argument
        order, with repeated variables *not* collapsed here (the engine
        handles that).
        """
        pred, param = atom.pred, atom.param
        a = self.alphabet
        if pred == "eq":
            return pres.cached(a, "equality", None)
        if pred == "prefix":
            return pres.cached(a, "prefix", False)
        if pred == "sprefix":
            return pres.cached(a, "prefix", True)
        if pred == "ext1":
            return pres.cached(a, "extends_by_one", None)
        if pred == "last":
            return pres.cached(a, "last_symbol", param)
        if pred == "el":
            return pres.cached(a, "equal_length", None)
        if pred == "len_le":
            return pres.cached(a, "length_le", False)
        if pred == "len_lt":
            return pres.cached(a, "length_le", True)
        if pred == "lex_le":
            return pres.cached(a, "lex_le", False)
        if pred == "lex_lt":
            return pres.cached(a, "lex_le", True)
        if pred == "matches":
            return pres.member(a, self.pattern_dfa(param or ""))
        if pred == "psuffix":
            return pres.pattern_suffix(a, self.pattern_dfa(param or ""))
        if pred == "graph_add_last":
            return pres.cached(a, "add_last_graph", param)
        if pred == "graph_add_first":
            return pres.cached(a, "add_first_graph", param)
        if pred == "graph_trim_first":
            return pres.cached(a, "trim_first_graph", param)
        if pred == "graph_insert_at":
            return pres.cached(a, "insert_at_graph", param)
        if pred == "graph_lcp":
            return pres.cached(a, "lcp_graph", None)
        if pred == "graph_const":
            return pres.cached(a, "constant", param)
        raise SignatureError(f"unknown predicate {pred!r}")

    def __str__(self) -> str:
        return f"{self.name} over {self.alphabet}"


def _term_children(term: Term) -> tuple[Term, ...]:
    if isinstance(term, (AddLast, AddFirst, TrimFirst)):
        return (term.inner,)
    if isinstance(term, Lcp):
        return (term.left, term.right)
    return ()


@functools.lru_cache(maxsize=None)
def _pattern_dfa(alphabet_symbols: tuple[str, ...], regex: str) -> DFA:
    return compile_regex(regex, Alphabet(alphabet_symbols))


@functools.lru_cache(maxsize=None)
def _pattern_is_star_free(alphabet_symbols: tuple[str, ...], regex: str) -> bool:
    return is_star_free(_pattern_dfa(alphabet_symbols, regex))
