"""Set-at-a-time physical executor for algebra plans (the "algebra" engine).

:func:`repro.algebra.optimize.optimize_for_execution` rewrites a compiled
plan into an execution-oriented logical form (hash-join fusion, selection
and projection pushdown); this module runs that form set-at-a-time:

* :class:`~repro.algebra.plan.Join` nodes execute as **hash equi-joins**
  (build on the smaller input's key columns, probe the other side),
* ``Exists``-shaped projections — ``project[I](join)`` with ``I`` inside
  the left input and no residual condition — execute as **hash
  semi-joins** that never materialize the joined rows,
* ``Difference`` executes as a **hash anti-join** over the built right
  side,
* repeated subplans are **memoized** per database fingerprint (the
  compiler emits the same ``gamma``-bound subplan many times; the key
  reuses :func:`repro.engine.cache.database_fingerprint`), and

every operator reports rows/wall-time into an :class:`OpStats` tree that
EXPLAIN renders, increments the ``algebra.*`` METRICS counters, and
polls :func:`repro.engine.deadline.checkpoint` so service timeouts cover
long joins.

The entry point used by the planner is :func:`run_algebra`; tests and
benchmarks can drive :class:`AlgebraExecutor` directly on a plan.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.algebra.compile import CompiledQuery, CompileError, compile_query
from repro.algebra.optimize import _rebuild, _Shim, optimize_for_execution
from repro.algebra.plan import (
    Difference,
    Join,
    Plan,
    Product,
    Project,
    Select,
    Union,
    _get_checker,
)
from repro.database.instance import Database
from repro.engine.cache import database_fingerprint
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.logic.formulas import Formula
from repro.structures.base import StringStructure

_TICK_MASK = 255

Row = tuple[str, ...]
Rows = frozenset


@dataclass
class OpStats:
    """Per-operator execution statistics (one EXPLAIN tree node)."""

    label: str
    kind: str
    rows: int
    seconds: float
    memo_hit: bool = False
    children: list["OpStats"] = field(default_factory=list)

    def total_rows(self) -> int:
        """Largest row count anywhere in this subtree (peak intermediate)."""
        return max([self.rows] + [c.total_rows() for c in self.children])

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "kind": self.kind,
            "rows": self.rows,
            "seconds": self.seconds,
            "memo_hit": self.memo_hit,
            "children": [c.to_dict() for c in self.children],
        }


def _is_semi_join(plan: Plan) -> bool:
    """``project[I](join)`` with ``I`` ⊆ left columns and no residual —
    only the left rows matter, so probing can skip row construction."""
    return (
        isinstance(plan, Project)
        and isinstance(plan.child, Join)
        and plan.child.residual is None
        and all(i < plan.child.left.arity for i in plan.indices)
    )


class AlgebraExecutor:
    """Executes optimized plans against one database, memoizing subplans.

    The memo maps ``(subplan, database fingerprint)`` to its rows, so an
    executor reused across runs (the planner keeps one per query) only
    pays for each distinct subplan once per database state.

    ``recorder``, when given, is called as ``recorder(node, rows)`` for
    every operator the executor materializes — the delta-maintenance
    layer (:mod:`repro.delta.maintenance`) uses it to snapshot subplan
    rows on version-tracked databases so the *next* version's run can be
    maintained incrementally instead of recomputed.
    """

    def __init__(
        self,
        structure: StringStructure,
        database: Database,
        recorder=None,
    ):
        self.structure = structure
        self.database = database
        self._db_key = database_fingerprint(database)
        self._memo: dict[tuple[Plan, str], Rows] = {}
        self._recorder = recorder

    def run(self, plan: Plan) -> tuple[Rows, OpStats]:
        """Evaluate ``plan``; returns the rows and the operator stats tree."""
        return self._execute(plan)

    # ------------------------------------------------------------- internal

    def _execute(self, node: Plan) -> tuple[Rows, OpStats]:
        memo_key = (node, self._db_key)
        cached = self._memo.get(memo_key)
        if cached is not None:
            METRICS.inc("algebra.memo_hits")
            stats = OpStats(
                label=self._label(node),
                kind=self._kind(node),
                rows=len(cached),
                seconds=0.0,
                memo_hit=True,
            )
            return cached, stats

        checkpoint()
        if _is_semi_join(node):
            rows, stats = self._semi_join(node)  # type: ignore[arg-type]
        elif isinstance(node, Join):
            rows, stats = self._hash_join(node)
        elif isinstance(node, Difference):
            rows, stats = self._anti_join(node)
        else:
            rows, stats = self._generic(node)

        self._memo[memo_key] = rows
        if self._recorder is not None:
            self._recorder(node, rows)
        return rows, stats

    def _semi_join(self, node: Project) -> tuple[Rows, OpStats]:
        join: Join = node.child  # type: ignore[assignment]
        lrows, lstats = self._execute(join.left)
        rrows, rstats = self._execute(join.right)
        start = time.perf_counter()
        METRICS.inc("algebra.joins")
        keys = set()
        tick = 0
        for r in rrows:
            tick += 1
            if not tick & _TICK_MASK:
                checkpoint()
            keys.add(tuple(r[j] for _, j in join.pairs))
        out = set()
        for l in lrows:
            tick += 1
            if not tick & _TICK_MASK:
                checkpoint()
            if tuple(l[i] for i, _ in join.pairs) in keys:
                out.add(tuple(l[i] for i in node.indices))
        METRICS.inc("algebra.rows_probed", len(lrows))
        rows = frozenset(out)
        stats = OpStats(
            label=self._label(node),
            kind="SemiJoin",
            rows=len(rows),
            seconds=time.perf_counter() - start,
            children=[lstats, rstats],
        )
        return rows, stats

    def _hash_join(self, node: Join) -> tuple[Rows, OpStats]:
        lrows, lstats = self._execute(node.left)
        rrows, rstats = self._execute(node.right)
        start = time.perf_counter()
        METRICS.inc("algebra.joins")
        checker = (
            _get_checker(node.residual, self.structure)
            if node.residual is not None
            else None
        )
        # Build on the smaller side, probe with the larger one.
        build_right = len(rrows) <= len(lrows)
        table: dict[Row, list[Row]] = {}
        tick = 0
        if build_right:
            build, probe = rrows, lrows
            bkey = lambda r: tuple(r[j] for _, j in node.pairs)
            pkey = lambda l: tuple(l[i] for i, _ in node.pairs)
        else:
            build, probe = lrows, rrows
            bkey = lambda l: tuple(l[i] for i, _ in node.pairs)
            pkey = lambda r: tuple(r[j] for _, j in node.pairs)
        for row in build:
            tick += 1
            if not tick & _TICK_MASK:
                checkpoint()
            table.setdefault(bkey(row), []).append(row)
        out = set()
        for row in probe:
            tick += 1
            if not tick & _TICK_MASK:
                checkpoint()
            matches = table.get(pkey(row))
            if not matches:
                continue
            for other in matches:
                joined = row + other if build_right else other + row
                if checker is None or checker.check(joined):
                    out.add(joined)
        METRICS.inc("algebra.rows_probed", len(probe))
        rows = frozenset(out)
        stats = OpStats(
            label=self._label(node),
            kind="HashJoin",
            rows=len(rows),
            seconds=time.perf_counter() - start,
            children=[lstats, rstats],
        )
        return rows, stats

    def _anti_join(self, node: Difference) -> tuple[Rows, OpStats]:
        lrows, lstats = self._execute(node.left)
        rrows, rstats = self._execute(node.right)
        start = time.perf_counter()
        METRICS.inc("algebra.rows_probed", len(lrows))
        rows = lrows - rrows  # hash anti-join: probe left against right's set
        stats = OpStats(
            label=self._label(node),
            kind="AntiJoin",
            rows=len(rows),
            seconds=time.perf_counter() - start,
            children=[lstats, rstats],
        )
        return rows, stats

    def _generic(self, node: Plan) -> tuple[Rows, OpStats]:
        """Any other operator: children via the memo, node via its own
        ``evaluate`` (the streamed ``Select(Product)`` path included)."""
        child_results = [self._execute(c) for c in node.children()]
        start = time.perf_counter()
        shimmed = _rebuild(
            node, [_Shim(rows, c.arity)
                   for (rows, _), c in zip(child_results, node.children())]
        )
        rows = shimmed.evaluate(self.database, self.structure)
        stats = OpStats(
            label=self._label(node),
            kind=self._kind(node),
            rows=len(rows),
            seconds=time.perf_counter() - start,
            children=[s for _, s in child_results],
        )
        return rows, stats

    @staticmethod
    def _kind(node: Plan) -> str:
        if _is_semi_join(node):
            return "SemiJoin"
        if isinstance(node, Join):
            return "HashJoin"
        if isinstance(node, Difference):
            return "AntiJoin"
        if isinstance(node, Select) and isinstance(node.child, Product):
            return "FilteredCross"
        return type(node).__name__

    @staticmethod
    def _label(node: Plan) -> str:
        text = str(node)
        return text if len(text) <= 120 else text[:117] + "..."


# A small cache of compiled-and-optimized plans: compiling is pure in the
# formula/structure/schema/slack, so repeated queries (the service layer's
# common case) skip the compiler and rewrite fixpoint entirely.
_PLAN_CACHE: dict[tuple, tuple[CompiledQuery, Plan]] = {}
_PLAN_CACHE_CAP = 128


def compile_for_execution(
    formula: Formula,
    structure: StringStructure,
    schema,
    slack: int = 1,
) -> tuple[CompiledQuery, Plan]:
    """Compile + ``optimize_for_execution``, with a module-level cache.

    Returns the original :class:`CompiledQuery` (for its output columns)
    and the fused physical plan.  Keyed on the canonical fingerprint
    (:mod:`repro.logic.canonical`), so alpha-equivalent and
    conjunct-reordered spellings share the compiled plan — sound because
    alpha-equivalent formulas have identical free variables, hence
    identical output columns, and execution depends only on the plan.
    """
    from repro.logic.canonical import canonical_fingerprint

    key = (
        canonical_fingerprint(formula),
        structure.name,
        structure.alphabet.symbols,
        slack,
        schema,
    )
    hit = _PLAN_CACHE.get(key)
    if hit is not None:
        return hit
    try:
        compiled = compile_query(formula, structure, schema, slack=slack)
        optimized = optimize_for_execution(compiled.plan)
    except CompileError:
        # Outside Theorem 4's collapsed fragment: fall back to the RANF
        # translation (repro.algebra.ranf) and execute its *finite* half.
        # Everything keyed off this function — codegen pipelines, delta
        # maintenance, sharded scatter — therefore computes/maintains
        # exactly the finite half; the planner only routes formulas here
        # whose finite half is provably the whole answer, and the algebra
        # backend runs the pair's "infinite" check itself via run_ranf.
        from repro.algebra.ranf import translate_ranf

        pair = translate_ranf(formula, structure, schema, slack=slack)
        compiled, optimized = pair.compiled, pair.fin_optimized
    if len(_PLAN_CACHE) >= _PLAN_CACHE_CAP:
        _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
    _PLAN_CACHE[key] = (compiled, optimized)
    return (compiled, optimized)


def run_algebra(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: int = 1,
    recorder=None,
) -> tuple[tuple[str, ...], Rows, OpStats]:
    """Evaluate a RANF-translatable query with the set-at-a-time executor.

    Returns ``(output columns, rows, operator stats)``.  Queries outside
    the collapsed fragment run the RANF translation's finite half (see
    :func:`compile_for_execution`); :class:`~repro.algebra.compile.CompileError`
    is raised when even the translation bails (the planner checks
    eligibility before calling this).  ``recorder`` is forwarded to
    :class:`AlgebraExecutor`.
    """
    compiled, optimized = compile_for_execution(
        formula, structure, database.schema, slack=slack
    )
    executor = AlgebraExecutor(structure, database, recorder=recorder)
    rows, stats = executor.run(optimized)
    return compiled.columns, rows, stats
