"""The paper's relational algebras RA(S), RA(S_len), RA(S_left), RA(S_reg).

Safe queries as executable plans (Theorems 4 and 8): plan nodes in
:mod:`repro.algebra.plan`, the four dialects in
:mod:`repro.algebra.dialects`, the calculus->algebra compiler in
:mod:`repro.algebra.compile`, and the algebra->calculus translation in
:mod:`repro.algebra.to_calculus`.

Beyond the paper's syntax, :mod:`repro.algebra.optimize` grows an
execution-oriented rewrite pass (:func:`optimize_for_execution`, hash-join
fusion + pushdown) and :mod:`repro.algebra.exec` runs the result
set-at-a-time — the planner's third engine (``docs/algebra_engine.md``).
"""

from repro.algebra.compile import (
    CompileError,
    CompiledQuery,
    bound_plan,
    compile_query,
    is_collapsed_form,
    is_database_free,
    query_constants,
)
from repro.algebra.dialects import (
    DIALECTS,
    FOR_STRUCTURE,
    AlgebraDialect,
    RA_S,
    RA_S_insert,
    RA_S_left,
    RA_S_len,
    RA_S_reg,
)
from repro.algebra.exec import (
    AlgebraExecutor,
    OpStats,
    compile_for_execution,
    run_algebra,
)
from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    InsertAtOp,
    Join,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
    col,
)
from repro.algebra.optimize import (
    evaluate_with_cse,
    optimize,
    optimize_for_execution,
)
from repro.algebra.to_calculus import column_var, to_calculus

__all__ = [
    "AddFirstOp",
    "AddLastOp",
    "AlgebraDialect",
    "AlgebraExecutor",
    "BaseRel",
    "CompileError",
    "CompiledQuery",
    "DIALECTS",
    "Difference",
    "DownOp",
    "EpsilonRel",
    "FOR_STRUCTURE",
    "InsertAtOp",
    "Join",
    "OpStats",
    "Plan",
    "PrefixOp",
    "Product",
    "Project",
    "RA_S",
    "RA_S_insert",
    "RA_S_left",
    "RA_S_len",
    "RA_S_reg",
    "Select",
    "TrimFirstOp",
    "Union",
    "bound_plan",
    "col",
    "column_var",
    "compile_for_execution",
    "compile_query",
    "evaluate_with_cse",
    "is_collapsed_form",
    "optimize",
    "optimize_for_execution",
    "is_database_free",
    "query_constants",
    "run_algebra",
    "to_calculus",
]
