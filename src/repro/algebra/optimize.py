"""Algebra plan optimization.

The calculus->algebra compiler (like every textbook translation) emits
redundant plans: repeated bound subplans, stacked projections, selections
that could sit closer to their inputs.  This module provides

* :func:`optimize` — semantics-preserving rewrite rules:

  - cascade projections (``project[i](project[j](p)) -> project[j o i](p)``),
  - drop identity projections,
  - merge stacked selections into one conjunctive selection,
  - push selections below projections and into the relevant side of a
    product,
  - collapse idempotent unions (``p u p -> p``) and self-differences,

* :func:`evaluate_with_cse` — bottom-up evaluation with common
  subexpression elimination: plan nodes are frozen dataclasses with value
  equality, so equal subplans (the compiler's repeated ``gamma``-bound,
  notably) are evaluated once.

Every rewrite is validated in the test suite by comparing plan outputs
and by round-tripping through :func:`repro.algebra.to_calculus` into the
exact engine.
"""

from __future__ import annotations

from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    InsertAtOp,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
    _column_index,
    col,
)
from repro.database.instance import Database
from repro.logic.formulas import And, Formula
from repro.logic.terms import Term, Var
from repro.structures.base import StringStructure


def optimize(plan: Plan) -> Plan:
    """Apply the rewrite rules bottom-up until a fixpoint."""
    current = plan
    for _ in range(20):  # rule sets are strictly size-reducing in practice
        rewritten = _rewrite(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _rewrite(plan: Plan) -> Plan:
    # Rewrite children first.
    plan = _rebuild(plan, [_rewrite(c) for c in plan.children()])

    # project[identity](p) -> p
    if isinstance(plan, Project) and plan.indices == tuple(range(plan.child.arity)):
        return plan.child

    # project[I](project[J](p)) -> project[J[i] for i in I](p)
    if isinstance(plan, Project) and isinstance(plan.child, Project):
        inner = plan.child
        return Project(inner.child, tuple(inner.indices[i] for i in plan.indices))

    # select[c1](select[c2](p)) -> select[c1 & c2](p)
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        inner = plan.child
        return Select(inner.child, And((inner.condition, plan.condition)))

    # select[c](project[I](p)) -> project[I](select[c'](p)) with columns
    # remapped through I (lets the selection meet its source sooner and
    # exposes product-pushdown below).
    if isinstance(plan, Select) and isinstance(plan.child, Project):
        project = plan.child
        mapping = {
            f"c{out}": col(src) for out, src in enumerate(project.indices)
        }
        pushed = plan.condition.substitute(mapping)
        return Project(Select(project.child, pushed), project.indices)

    # select[c](p x q) -> push into the side the condition touches.
    if isinstance(plan, Select) and isinstance(plan.child, Product):
        product = plan.child
        cols = {_column_index(v) for v in plan.condition.free_variables()}
        n = product.left.arity
        if cols and max(cols, default=-1) < n:
            return Product(Select(product.left, plan.condition), product.right)
        if cols and min(cols, default=0) >= n:
            shifted = plan.condition.substitute(
                {f"c{i}": col(i - n) for i in sorted(cols)}
            )
            return Product(product.left, Select(product.right, shifted))

    # p u p -> p
    if isinstance(plan, Union) and plan.left == plan.right:
        return plan.left

    # (p u q) u q -> p u q  (right-leaning duplicates from the compiler)
    if isinstance(plan, Union) and isinstance(plan.left, Union):
        if plan.left.right == plan.right or plan.left.left == plan.right:
            return plan.left

    return plan


def _rebuild(plan: Plan, children: list[Plan]) -> Plan:
    """Clone a node with new children (frozen dataclasses)."""
    if not children:
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.condition)
    if isinstance(plan, Project):
        return Project(children[0], plan.indices)
    if isinstance(plan, Product):
        return Product(children[0], children[1])
    if isinstance(plan, Union):
        return Union(children[0], children[1])
    if isinstance(plan, Difference):
        return Difference(children[0], children[1])
    if isinstance(plan, PrefixOp):
        return PrefixOp(children[0], plan.index)
    if isinstance(plan, AddLastOp):
        return AddLastOp(children[0], plan.index, plan.symbol)
    if isinstance(plan, AddFirstOp):
        return AddFirstOp(children[0], plan.index, plan.symbol)
    if isinstance(plan, TrimFirstOp):
        return TrimFirstOp(children[0], plan.index, plan.symbol)
    if isinstance(plan, InsertAtOp):
        return InsertAtOp(children[0], plan.index, plan.prefix_index, plan.symbol)
    if isinstance(plan, DownOp):
        return DownOp(children[0], plan.index)
    return plan  # pragma: no cover - leaf nodes have no children


def evaluate_with_cse(
    plan: Plan, db: Database, structure: StringStructure
) -> frozenset[tuple[str, ...]]:
    """Evaluate with common-subexpression elimination.

    Equal subplans are evaluated once; the compiler's repeated
    ``gamma``-bound subplans make this a large constant-factor win (see
    ``benchmarks/bench_abl_optimizer.py``).
    """
    cache: dict[Plan, frozenset] = {}

    def run(node: Plan) -> frozenset:
        cached = cache.get(node)
        if cached is not None:
            return cached
        # Evaluate children through the cache by re-dispatching on a
        # shallow copy whose children are pre-evaluated is intrusive;
        # instead, exploit that every node's evaluate() only calls
        # child.evaluate(db, structure) -- wrap children in memo shims.
        shimmed = _rebuild(node, [_Shim(run(c), c.arity) for c in node.children()])
        result = shimmed.evaluate(db, structure)
        cache[node] = result
        return result

    return run(plan)


class _Shim(Plan):
    """A pre-evaluated plan node (internal to :func:`evaluate_with_cse`)."""

    def __init__(self, rows: frozenset, arity: int):
        self.rows = rows
        self.arity = arity

    def evaluate(self, db: Database, structure: StringStructure) -> frozenset:
        return self.rows

    def __eq__(self, other: object) -> bool:  # shims never join the cache
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<shim {len(self.rows)} rows>"
