"""Algebra plan optimization.

The calculus->algebra compiler (like every textbook translation) emits
redundant plans: repeated bound subplans, stacked projections, selections
that could sit closer to their inputs.  This module provides

* :func:`optimize` — semantics-preserving rewrite rules:

  - cascade projections (``project[i](project[j](p)) -> project[j o i](p)``),
  - drop identity projections,
  - merge stacked selections into one conjunctive selection,
  - push selections below projections and into the relevant side of a
    product,
  - collapse idempotent unions (``p u p -> p``) and self-differences,

* :func:`optimize_for_execution` — the set-at-a-time execution rewrite
  pass layered on :func:`optimize` (the logical half of the algebra
  engine, see :mod:`repro.algebra.exec`):

  - split conjunctive selections over products per conjunct, pushing
    single-side conjuncts into their side,
  - fuse cross-side column equalities into hash equi-joins
    (``select[c0=c2 & ...](p x q)`` -> :class:`~repro.algebra.plan.Join`),
  - push selections below unions and into the left side of differences,
  - prune dead columns by pushing projections through products, joins,
    and unions (only the columns a parent actually consumes are carried),

* :func:`evaluate_with_cse` — bottom-up evaluation with common
  subexpression elimination: plan nodes are frozen dataclasses with value
  equality, so equal subplans (the compiler's repeated ``gamma``-bound,
  notably) are evaluated once.

Every rewrite is validated in the test suite by comparing plan outputs
and by round-tripping through :func:`repro.algebra.to_calculus` into the
exact engine.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    InsertAtOp,
    Join,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
    _column_index,
    col,
)
from repro.database.instance import Database
from repro.logic.formulas import And, Atom, Formula
from repro.logic.terms import Term, Var
from repro.structures.base import StringStructure


def optimize(plan: Plan) -> Plan:
    """Apply the rewrite rules bottom-up until a fixpoint."""
    current = plan
    for _ in range(20):  # rule sets are strictly size-reducing in practice
        rewritten = _rewrite(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _rewrite(plan: Plan) -> Plan:
    # Rewrite children first.
    plan = _rebuild(plan, [_rewrite(c) for c in plan.children()])
    return _rewrite_node(plan)


def _rewrite_node(plan: Plan) -> Plan:
    """The conservative top-level rules (children already rewritten)."""
    # project[identity](p) -> p
    if isinstance(plan, Project) and plan.indices == tuple(range(plan.child.arity)):
        return plan.child

    # project[I](project[J](p)) -> project[J[i] for i in I](p)
    if isinstance(plan, Project) and isinstance(plan.child, Project):
        inner = plan.child
        return Project(inner.child, tuple(inner.indices[i] for i in plan.indices))

    # select[c1](select[c2](p)) -> select[c1 & c2](p)
    if isinstance(plan, Select) and isinstance(plan.child, Select):
        inner = plan.child
        return Select(inner.child, And((inner.condition, plan.condition)))

    # select[c](project[I](p)) -> project[I](select[c'](p)) with columns
    # remapped through I (lets the selection meet its source sooner and
    # exposes product-pushdown below).
    if isinstance(plan, Select) and isinstance(plan.child, Project):
        project = plan.child
        mapping = {
            f"c{out}": col(src) for out, src in enumerate(project.indices)
        }
        pushed = plan.condition.substitute(mapping)
        return Project(Select(project.child, pushed), project.indices)

    # select[c](p x q) -> push into the side the condition touches.
    if isinstance(plan, Select) and isinstance(plan.child, Product):
        product = plan.child
        cols = {_column_index(v) for v in plan.condition.free_variables()}
        n = product.left.arity
        if cols and max(cols, default=-1) < n:
            return Product(Select(product.left, plan.condition), product.right)
        if cols and min(cols, default=0) >= n:
            shifted = plan.condition.substitute(
                {f"c{i}": col(i - n) for i in sorted(cols)}
            )
            return Product(product.left, Select(product.right, shifted))

    # p u p -> p
    if isinstance(plan, Union) and plan.left == plan.right:
        return plan.left

    # (p u q) u q -> p u q  (right-leaning duplicates from the compiler)
    if isinstance(plan, Union) and isinstance(plan.left, Union):
        if plan.left.right == plan.right or plan.left.left == plan.right:
            return plan.left

    return plan


# --------------------------------------------- set-at-a-time execution pass


def optimize_for_execution(plan: Plan) -> Plan:
    """The full logical-rewrite pass of the algebra engine.

    Applies :func:`optimize`'s rules plus join fusion and the pushdowns
    documented in the module docstring, to a fixpoint.  The result may
    contain :class:`~repro.algebra.plan.Join` nodes, which the paper's
    dialects reject — it is meant for :mod:`repro.algebra.exec`'s
    physical lowering (or direct ``Plan.evaluate``), not for dialect
    validation.
    """
    current = optimize(plan)
    for _ in range(40):
        rewritten = _exec_rewrite(current)
        if rewritten == current:
            return rewritten
        current = rewritten
    return current


def _exec_rewrite(plan: Plan) -> Plan:
    plan = _rebuild(plan, [_exec_rewrite(c) for c in plan.children()])
    rewritten = _exec_rewrite_node(plan)
    if rewritten is not None:
        return rewritten
    return _rewrite_node(plan)


def _conjuncts(condition: Formula) -> list[Formula]:
    """Flatten nested conjunctions into a list of conjuncts."""
    if isinstance(condition, And):
        out: list[Formula] = []
        for part in condition.parts:
            out.extend(_conjuncts(part))
        return out
    return [condition]


def _conjoin(parts: list[Formula]) -> Optional[Formula]:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def _column_eq_pair(conjunct: Formula, n: int) -> Optional[tuple[int, int]]:
    """``(left col, right col)`` when the conjunct is a cross-side column
    equality over a product whose left arity is ``n``, else ``None``."""
    if not (
        isinstance(conjunct, Atom)
        and conjunct.pred == "eq"
        and len(conjunct.args) == 2
        and all(isinstance(a, Var) for a in conjunct.args)
    ):
        return None
    i = _column_index(conjunct.args[0].name)
    j = _column_index(conjunct.args[1].name)
    if i < n <= j:
        return (i, j - n)
    if j < n <= i:
        return (j, i - n)
    return None


def _shift_condition(condition: Formula, offset: int) -> Formula:
    cols = sorted(_column_index(v) for v in condition.free_variables())
    return condition.substitute({f"c{i}": col(i - offset) for i in cols})


def _exec_rewrite_node(plan: Plan) -> Optional[Plan]:
    """Execution-oriented top-level rules; ``None`` when none applies."""
    # select[c1 & c0=c2 & ...](p x q): split the conjunction — single-side
    # conjuncts sink into their side, cross-side column equalities become
    # hash-join keys, the rest stays as the join's residual condition.
    if isinstance(plan, Select) and isinstance(plan.child, Product):
        product = plan.child
        n = product.left.arity
        left_parts: list[Formula] = []
        right_parts: list[Formula] = []
        pairs: list[tuple[int, int]] = []
        residual: list[Formula] = []
        for conjunct in _conjuncts(plan.condition):
            pair = _column_eq_pair(conjunct, n)
            if pair is not None:
                pairs.append(pair)
                continue
            cols = {_column_index(v) for v in conjunct.free_variables()}
            if max(cols, default=-1) < n:
                left_parts.append(conjunct)  # includes column-free conjuncts
            elif min(cols, default=-1) >= n:
                right_parts.append(conjunct)
            else:
                residual.append(conjunct)
        if pairs or left_parts or right_parts:
            left = product.left
            right = product.right
            left_cond = _conjoin(left_parts)
            right_cond = _conjoin(right_parts)
            if left_cond is not None:
                left = Select(left, left_cond)
            if right_cond is not None:
                right = Select(right, _shift_condition(right_cond, n))
            if pairs:
                return Join(left, right, tuple(pairs), _conjoin(residual))
            if left_cond is not None or right_cond is not None:
                rest = _conjoin(residual)
                fused: Plan = Product(left, right)
                return fused if rest is None else Select(fused, rest)
        return None

    # select[c](join) -> fold the condition into the join's residual
    # (new key equalities included).
    if isinstance(plan, Select) and isinstance(plan.child, Join):
        join = plan.child
        n = join.left.arity
        pairs = list(join.pairs)
        residual = [] if join.residual is None else _conjuncts(join.residual)
        changed = False
        for conjunct in _conjuncts(plan.condition):
            pair = _column_eq_pair(conjunct, n)
            if pair is not None:
                pairs.append(pair)
                changed = True
            else:
                residual.append(conjunct)
        merged = Join(join.left, join.right, tuple(pairs), _conjoin(residual))
        return merged

    # select[c](p u q) -> select[c](p) u select[c](q)
    if isinstance(plan, Select) and isinstance(plan.child, Union):
        union = plan.child
        return Union(
            Select(union.left, plan.condition),
            Select(union.right, plan.condition),
        )

    # select[c](p - q) -> select[c](p) - q
    if isinstance(plan, Select) and isinstance(plan.child, Difference):
        diff = plan.child
        return Difference(Select(diff.left, plan.condition), diff.right)

    # project[I](p u q) -> project[I](p) u project[I](q)
    if isinstance(plan, Project) and isinstance(plan.child, Union):
        union = plan.child
        return Union(
            Project(union.left, plan.indices),
            Project(union.right, plan.indices),
        )

    # project[I](p x q) / project[I](join): prune columns neither the
    # projection nor the join keys/residual consume.
    if isinstance(plan, Project) and isinstance(plan.child, (Product, Join)):
        return _prune_columns(plan)

    return None


def _prune_columns(plan: Project) -> Optional[Plan]:
    """Push a projection through a product/join, dropping dead columns."""
    child = plan.child
    n = child.left.arity
    total = child.arity
    needed = set(plan.indices)
    if isinstance(child, Join):
        for i, j in child.pairs:
            needed.add(i)
            needed.add(n + j)
        if child.residual is not None:
            needed.update(
                _column_index(v) for v in child.residual.free_variables()
            )
    keep_left = sorted(c for c in needed if c < n)
    keep_right = sorted(c - n for c in needed if c >= n)
    if len(keep_left) == n and len(keep_right) == total - n:
        return None  # nothing dead; avoid rewriting forever
    # Remap old concatenated columns to their new positions.
    position = {c: i for i, c in enumerate(keep_left)}
    position.update(
        {n + c: len(keep_left) + i for i, c in enumerate(keep_right)}
    )
    left = Project(child.left, tuple(keep_left))
    right = Project(child.right, tuple(keep_right))
    if isinstance(child, Join):
        pairs = tuple(
            (position[i], position[n + j] - len(keep_left))
            for i, j in child.pairs
        )
        residual = child.residual
        if residual is not None:
            cols = sorted(_column_index(v) for v in residual.free_variables())
            residual = residual.substitute(
                {f"c{c}": col(position[c]) for c in cols}
            )
        inner: Plan = Join(left, right, pairs, residual)
    else:
        inner = Product(left, right)
    return Project(inner, tuple(position[c] for c in plan.indices))


def _rebuild(plan: Plan, children: list[Plan]) -> Plan:
    """Clone a node with new children (frozen dataclasses)."""
    if not children:
        return plan
    if isinstance(plan, Select):
        return Select(children[0], plan.condition)
    if isinstance(plan, Project):
        return Project(children[0], plan.indices)
    if isinstance(plan, Product):
        return Product(children[0], children[1])
    if isinstance(plan, Join):
        return Join(children[0], children[1], plan.pairs, plan.residual)
    if isinstance(plan, Union):
        return Union(children[0], children[1])
    if isinstance(plan, Difference):
        return Difference(children[0], children[1])
    if isinstance(plan, PrefixOp):
        return PrefixOp(children[0], plan.index)
    if isinstance(plan, AddLastOp):
        return AddLastOp(children[0], plan.index, plan.symbol)
    if isinstance(plan, AddFirstOp):
        return AddFirstOp(children[0], plan.index, plan.symbol)
    if isinstance(plan, TrimFirstOp):
        return TrimFirstOp(children[0], plan.index, plan.symbol)
    if isinstance(plan, InsertAtOp):
        return InsertAtOp(children[0], plan.index, plan.prefix_index, plan.symbol)
    if isinstance(plan, DownOp):
        return DownOp(children[0], plan.index)
    return plan  # pragma: no cover - leaf nodes have no children


def evaluate_with_cse(
    plan: Plan, db: Database, structure: StringStructure
) -> frozenset[tuple[str, ...]]:
    """Evaluate with common-subexpression elimination.

    Equal subplans are evaluated once; the compiler's repeated
    ``gamma``-bound subplans make this a large constant-factor win (see
    ``benchmarks/bench_abl_optimizer.py``).
    """
    cache: dict[Plan, frozenset] = {}

    def run(node: Plan) -> frozenset:
        cached = cache.get(node)
        if cached is not None:
            return cached
        # Evaluate children through the cache by re-dispatching on a
        # shallow copy whose children are pre-evaluated is intrusive;
        # instead, exploit that every node's evaluate() only calls
        # child.evaluate(db, structure) -- wrap children in memo shims.
        shimmed = _rebuild(node, [_Shim(run(c), c.arity) for c in node.children()])
        result = shimmed.evaluate(db, structure)
        cache[node] = result
        return result

    return run(plan)


class _Shim(Plan):
    """A pre-evaluated plan node (internal to :func:`evaluate_with_cse`)."""

    def __init__(self, rows: frozenset, arity: int):
        self.rows = rows
        self.arity = arity

    def evaluate(self, db: Database, structure: StringStructure) -> frozenset:
        return self.rows

    def __eq__(self, other: object) -> bool:  # shims never join the cache
        return self is other

    def __hash__(self) -> int:
        return id(self)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<shim {len(self.rows)} rows>"
