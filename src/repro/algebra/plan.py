"""Relational algebra plans with the paper's string operators.

A plan is a tree of operators; ``evaluate(db, structure)`` materializes the
(finite) result — algebra expressions are safe by construction, which is
the point of Theorems 4 and 8.

Operators (paper Sections 6.2 and 7.1), all positional on columns
``0..arity-1``:

=================  =====================================================
node               semantics
=================  =====================================================
``BaseRel(R)``     a schema relation
``EpsilonRel``     the constant unary relation ``{epsilon}`` (``R_eps``)
``Select``         ``sigma_alpha``: keep tuples satisfying an M-formula
``Project``        projection / column permutation / duplication
``Product``        cartesian product
``Union``          set union (same arity)
``Difference``     set difference (same arity)
``PrefixOp(i)``    append column: every prefix of column ``i``
``AddLastOp``      append column ``s_i . a``  (``add_i^a``)
``AddFirstOp``     append column ``a . s_i``  (``add_i^{l,a}``, RA(S_left))
``TrimFirstOp``    append column ``s_i - a``  (``trim_i^{l,a}``, RA(S_left))
``DownOp(i)``      append column: every string with ``|s| <= |s_i|``
                   (``down_i``, RA(S_len) — exponential, deliberately)
=================  =====================================================

Selection conditions are :class:`~repro.logic.formulas.Formula` objects
whose free variables are the column names ``c0, c1, ...`` (see
:func:`col`); they may quantify over ``Sigma*`` but must not mention the
database (the paper's side condition on ``sigma_alpha``).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Optional

from repro.database.instance import Database
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.errors import ArityError, EvaluationError
from repro.logic.formulas import Formula, QuantKind, RelAtom
from repro.logic.terms import Var
from repro.logic.transform import has_natural_quantifier
from repro.structures.base import StringStructure

Row = tuple[str, ...]
Rows = frozenset[Row]

#: Deadline-check stride for row loops: per-row work is tiny, so the
#: clock is only consulted every 256th row (matching the direct engine).
_TICK_MASK = 255


def col(i: int) -> Var:
    """The variable naming column ``i`` in a selection condition."""
    return Var(f"c{i}")


def _column_index(name: str) -> int:
    if not name.startswith("c") or not name[1:].isdigit():
        raise EvaluationError(
            f"selection conditions must use column variables c0, c1, ...; got {name!r}"
        )
    return int(name[1:])


class Plan:
    """Base class of algebra plan nodes."""

    arity: int

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        raise NotImplementedError

    def children(self) -> tuple["Plan", ...]:
        return ()

    def walk(self):
        yield self
        for c in self.children():
            yield from c.walk()

    # -- combinator sugar ---------------------------------------------------

    def select(self, condition: Formula) -> "Select":
        return Select(self, condition)

    def project(self, indices: tuple[int, ...]) -> "Project":
        return Project(self, indices)

    def product(self, other: "Plan") -> "Product":
        return Product(self, other)

    def union(self, other: "Plan") -> "Union":
        return Union(self, other)

    def difference(self, other: "Plan") -> "Difference":
        return Difference(self, other)


@dataclass(frozen=True)
class BaseRel(Plan):
    """A database relation (arity resolved at evaluation)."""

    name: str
    arity: int

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        rows = db.relation(self.name)
        if db.schema.arity(self.name) != self.arity:
            raise ArityError(
                f"plan expects {self.name}/{self.arity}, database has "
                f"{self.name}/{db.schema.arity(self.name)}"
            )
        return rows

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EpsilonRel(Plan):
    """The paper's ``R_eps``: the constant unary relation ``{epsilon}``."""

    arity: int = 1

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        return frozenset({("",)})

    def __str__(self) -> str:
        return "R_eps"


class _ConditionChecker:
    """Evaluates a database-free condition on concrete rows.

    Quantifier-free conditions are evaluated directly; quantified ones are
    compiled once into a relation automaton over the empty database (legal
    because ``sigma_alpha`` conditions may not mention the database).
    """

    def __init__(self, condition: Formula, structure: StringStructure, slack: int = 0):
        if condition.relation_names():
            raise EvaluationError(
                "sigma_alpha conditions must not mention database relations"
            )
        self.condition = condition
        self.structure = structure
        self.columns = sorted(_column_index(v) for v in condition.free_variables())
        self._automaton = None
        if any(
            True
            for f in condition.walk()
            if f.__class__.__name__ in ("Exists", "Forall")
        ):
            from repro.eval.automata_engine import AutomataEngine

            empty_db = Database(structure.alphabet, {})
            engine = AutomataEngine(structure, empty_db, slack=slack)
            result = engine.run(condition, check_signature=False)
            self._automaton = result.relation
            self._auto_vars = result.variables

    def check(self, row: Row) -> bool:
        if self._automaton is not None:
            values = tuple(row[_column_index(v)] for v in self._auto_vars)
            return self._automaton.contains(values)
        assignment = {f"c{i}": row[i] for i in self.columns}
        return _eval_quantifier_free(self.condition, assignment, self.structure)

    def max_column(self) -> int:
        return max(self.columns, default=-1)


def _eval_quantifier_free(
    f: Formula, assignment: dict[str, str], structure: StringStructure
) -> bool:
    from repro.logic.formulas import And, Atom, FalseF, Not, Or, TrueF

    if isinstance(f, TrueF):
        return True
    if isinstance(f, FalseF):
        return False
    if isinstance(f, Atom):
        return structure.eval_atom(f, assignment)
    if isinstance(f, Not):
        return not _eval_quantifier_free(f.inner, assignment, structure)
    if isinstance(f, And):
        return all(_eval_quantifier_free(p, assignment, structure) for p in f.parts)
    if isinstance(f, Or):
        return any(_eval_quantifier_free(p, assignment, structure) for p in f.parts)
    raise EvaluationError(f"unexpected node in quantifier-free condition: {f!r}")


#: Checker cache: conditions are database-free, so a checker depends only
#: on the condition and the structure; compiling quantified conditions to
#: automata is expensive enough to be worth sharing across evaluations.
_CHECKER_CACHE: dict[tuple, "_ConditionChecker"] = {}


def _get_checker(
    condition: Formula, structure: StringStructure, slack: int = 0
) -> "_ConditionChecker":
    key = (str(condition), structure.name, structure.alphabet.symbols, slack)
    checker = _CHECKER_CACHE.get(key)
    if checker is None:
        checker = _ConditionChecker(condition, structure, slack=slack)
        _CHECKER_CACHE[key] = checker
    return checker


@dataclass(frozen=True)
class Select(Plan):
    """``sigma_alpha``: filter rows by a database-free M-formula."""

    child: Plan
    condition: Formula

    @property
    def arity(self) -> int:
        return self.child.arity

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        checker = _get_checker(self.condition, structure)
        if checker.max_column() >= self.child.arity:
            raise ArityError(
                f"condition uses column c{checker.max_column()}, child arity "
                f"is {self.child.arity}"
            )
        if isinstance(self.child, Product):
            # Stream the cross product through the filter pair by pair:
            # only the (usually much smaller) selected set is ever
            # materialized, never the O(|L|*|R|) intermediate relation.
            lrows = self.child.left.evaluate(db, structure)
            rrows = self.child.right.evaluate(db, structure)
            out = set()
            tick = 0
            for l in lrows:
                for r in rrows:
                    tick += 1
                    if not tick & _TICK_MASK:
                        checkpoint()
                    row = l + r
                    if checker.check(row):
                        out.add(row)
            return frozenset(out)
        rows = self.child.evaluate(db, structure)
        return frozenset(r for r in rows if checker.check(r))

    def __str__(self) -> str:
        return f"select[{self.condition}]({self.child})"


@dataclass(frozen=True)
class Project(Plan):
    """Projection; ``indices`` may permute and duplicate columns."""

    child: Plan
    indices: tuple[int, ...]

    @property
    def arity(self) -> int:
        return len(self.indices)

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if any(i < 0 or i >= self.child.arity for i in self.indices):
            raise ArityError(f"projection {self.indices} out of range")
        rows = self.child.evaluate(db, structure)
        return frozenset(tuple(r[i] for i in self.indices) for r in rows)

    def __str__(self) -> str:
        return f"project[{','.join(map(str, self.indices))}]({self.child})"


@dataclass(frozen=True)
class Product(Plan):
    left: Plan
    right: Plan

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        lrows = self.left.evaluate(db, structure)
        rrows = self.right.evaluate(db, structure)
        return frozenset(self._stream(lrows, rrows))

    @staticmethod
    def _stream(lrows: Rows, rrows: Rows):
        tick = 0
        for l in lrows:
            for r in rrows:
                tick += 1
                if not tick & _TICK_MASK:
                    checkpoint()
                yield l + r

    def __str__(self) -> str:
        return f"({self.left} x {self.right})"


@dataclass(frozen=True)
class Join(Plan):
    """Fused equi-join: ``sigma[AND c_l=c_r](left x right)``, set-at-a-time.

    Not one of the paper's algebra operators — the optimizer's
    :func:`~repro.algebra.optimize.optimize_for_execution` fuses a
    ``Select`` whose condition conjoins cross-side column equalities over
    a ``Product`` into this node, and evaluation hash-partitions on the
    join keys instead of enumerating the cross product.  ``pairs`` holds
    ``(left column, right column)`` key pairs; ``residual`` is the part
    of the original condition that is not a cross-side column equality
    (checked per joined row), in the *concatenated* column space.

    Dialect validation deliberately rejects this node: fused plans are an
    execution-layer form, not RA(M) syntax (``to_calculus`` translates it
    back to the conjunction it came from).
    """

    left: Plan
    right: Plan
    pairs: tuple[tuple[int, int], ...]
    residual: Optional[Formula] = None

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        lrows = self.left.evaluate(db, structure)
        rrows = self.right.evaluate(db, structure)
        checker = (
            _get_checker(self.residual, structure)
            if self.residual is not None
            else None
        )
        METRICS.inc("algebra.joins")
        table: dict[Row, list[Row]] = {}
        tick = 0
        for r in rrows:
            tick += 1
            if not tick & _TICK_MASK:
                checkpoint()
            key = tuple(r[j] for _, j in self.pairs)
            table.setdefault(key, []).append(r)
        out = set()
        for l in lrows:
            tick += 1
            if not tick & _TICK_MASK:
                checkpoint()
            matches = table.get(tuple(l[i] for i, _ in self.pairs))
            if not matches:
                continue
            for r in matches:
                row = l + r
                if checker is None or checker.check(row):
                    out.add(row)
        METRICS.inc("algebra.rows_probed", len(lrows))
        return frozenset(out)

    def __str__(self) -> str:
        keys = " & ".join(
            f"c{i}=c{self.left.arity + j}" for i, j in self.pairs
        )
        sigma = f"; {self.residual}" if self.residual is not None else ""
        return f"hashjoin[{keys}{sigma}]({self.left}, {self.right})"


@dataclass(frozen=True)
class Union(Plan):
    left: Plan
    right: Plan

    @property
    def arity(self) -> int:
        if self.left.arity != self.right.arity:
            raise ArityError("union of different arities")
        return self.left.arity

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        _ = self.arity
        return self.left.evaluate(db, structure) | self.right.evaluate(db, structure)

    def __str__(self) -> str:
        return f"({self.left} u {self.right})"


@dataclass(frozen=True)
class Difference(Plan):
    left: Plan
    right: Plan

    @property
    def arity(self) -> int:
        if self.left.arity != self.right.arity:
            raise ArityError("difference of different arities")
        return self.left.arity

    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        _ = self.arity
        return self.left.evaluate(db, structure) - self.right.evaluate(db, structure)

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


@dataclass(frozen=True)
class PrefixOp(Plan):
    """``prefix_i``: append a column ranging over prefixes of column ``i``."""

    child: Plan
    index: int

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if not 0 <= self.index < self.child.arity:
            raise ArityError(f"prefix_{self.index} out of range")
        out = set()
        for r in self.child.evaluate(db, structure):
            s = r[self.index]
            for k in range(len(s) + 1):
                out.add(r + (s[:k],))
        return frozenset(out)

    def __str__(self) -> str:
        return f"prefix_{self.index}({self.child})"


@dataclass(frozen=True)
class AddLastOp(Plan):
    """``add_i^a``: append the column ``s_i . a``."""

    child: Plan
    index: int
    symbol: str

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if not 0 <= self.index < self.child.arity:
            raise ArityError(f"add_{self.index} out of range")
        structure.alphabet.check_string(self.symbol)
        return frozenset(
            r + (r[self.index] + self.symbol,)
            for r in self.child.evaluate(db, structure)
        )

    def __str__(self) -> str:
        return f"add_{self.index}^{self.symbol}({self.child})"


@dataclass(frozen=True)
class AddFirstOp(Plan):
    """``add_i^{l,a}``: append the column ``a . s_i`` (RA(S_left))."""

    child: Plan
    index: int
    symbol: str

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if not 0 <= self.index < self.child.arity:
            raise ArityError(f"add_first_{self.index} out of range")
        structure.alphabet.check_string(self.symbol)
        return frozenset(
            r + (self.symbol + r[self.index],)
            for r in self.child.evaluate(db, structure)
        )

    def __str__(self) -> str:
        return f"add_first_{self.index}^{self.symbol}({self.child})"


@dataclass(frozen=True)
class TrimFirstOp(Plan):
    """``trim_i^{l,a}``: append the column ``s_i - a`` (RA(S_left))."""

    child: Plan
    index: int
    symbol: str

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if not 0 <= self.index < self.child.arity:
            raise ArityError(f"trim_first_{self.index} out of range")
        out = set()
        for r in self.child.evaluate(db, structure):
            s = r[self.index]
            trimmed = s[1:] if s.startswith(self.symbol) and s else ""
            out.add(r + (trimmed,))
        return frozenset(out)

    def __str__(self) -> str:
        return f"trim_first_{self.index}^{self.symbol}({self.child})"


@dataclass(frozen=True)
class InsertAtOp(Plan):
    """``insert_{i,j}^a``: append the column ``insert_a(s_i, s_j)``.

    The algebra operator of the Section 8 extension (RA(S_insert)): the
    new column is ``s_j . a . (s_i - s_j)`` when ``s_j`` is a prefix of
    ``s_i``, and epsilon otherwise.
    """

    child: Plan
    index: int
    prefix_index: int
    symbol: str

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if not 0 <= self.index < self.child.arity:
            raise ArityError(f"insert_{self.index} out of range")
        if not 0 <= self.prefix_index < self.child.arity:
            raise ArityError(f"insert prefix index {self.prefix_index} out of range")
        structure.alphabet.check_string(self.symbol)
        out = set()
        for r in self.child.evaluate(db, structure):
            s, p = r[self.index], r[self.prefix_index]
            if s.startswith(p):
                value = p + self.symbol + s[len(p):]
            else:
                value = ""
            out.add(r + (value,))
        return frozenset(out)

    def __str__(self) -> str:
        return f"insert_{self.index},{self.prefix_index}^{self.symbol}({self.child})"


@dataclass(frozen=True)
class DownOp(Plan):
    """``down_i``: append a column over all strings of length <= |s_i|.

    The paper (Section 6.2): "very expensive, as it may create sets whose
    size is exponential in the size of the input. It is, however,
    unavoidable" — RA(S_len) contains NP-complete safe queries.
    """

    child: Plan
    index: int

    @property
    def arity(self) -> int:
        return self.child.arity + 1

    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def evaluate(self, db: Database, structure: StringStructure) -> Rows:
        if not 0 <= self.index < self.child.arity:
            raise ArityError(f"down_{self.index} out of range")
        out = set()
        for r in self.child.evaluate(db, structure):
            for s in structure.alphabet.strings_up_to(len(r[self.index])):
                out.add(r + (s,))
        return frozenset(out)

    def __str__(self) -> str:
        return f"down_{self.index}({self.child})"
