"""Calculus -> algebra compilation (Theorems 4 and 8, constructively).

The paper proves ``safe RC(M) = RA(M)`` by (a) the range-restriction
theorems — every safe query's output lies within an algebraic bound
``gamma`` applied to the active domain (Theorem 3/7, via Lemmas 1-2) — and
(b) the restricted quantifier collapse — every query can be put in a form
where database relations occur only under active-domain quantifiers
(Theorem 1/6), at which point the classical calculus->algebra translation
goes through with ``sigma_alpha`` absorbing all pure-M subformulas.

:func:`compile_query` implements exactly that pipeline.  Its input must be
in **collapsed form**: every quantifier whose scope mentions a database
relation must be an ADOM quantifier (the form the collapse theorems
guarantee exists; the automata engine of :mod:`repro.eval` computes natural
semantics directly if you don't have one).  Database-free subformulas of
any quantifier structure become selection conditions, which the algebra
evaluates exactly.

The compiled plan computes the *range-restricted semantics* ``(gamma,
phi)`` of the paper's Section 6.1::

    Q(D) = gamma(adom(D) u {eps} u query constants) intersect phi(D)

where ``gamma`` is the structure-appropriate bound (prefix-extensions for
S/S_reg, two-sided extensions for S_left, the ``down`` length bound for
S_len), with ``slack`` playing the role of the paper's ``k``.  For queries
safe on ``D`` (and adequate slack) this equals ``phi(D)``; for unsafe
queries it is the canonical finite under-approximation the paper defines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.dialects import FOR_STRUCTURE, AlgebraDialect
from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    Union,
    col,
)
from repro.database.schema import Schema
from repro.errors import EvaluationError, SignatureError
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import StrConst, Var
from repro.logic.transform import flatten_terms
from repro.structures.base import StringStructure


class CompileError(EvaluationError):
    """The formula is not in collapsed form (see module docstring)."""


def is_database_free(formula: Formula) -> bool:
    """True iff evaluating the formula never consults the database.

    Schema relations obviously do; so does *every* restricted quantifier
    kind (ADOM ranges over the active domain, PREFIX/LENGTH domains are
    anchored to it).  Only NATURAL quantification is database-free.
    """
    for sub in formula.walk():
        if isinstance(sub, RelAtom):
            return False
        if isinstance(sub, (Exists, Forall)) and sub.kind is not QuantKind.NATURAL:
            return False
    return True


def is_collapsed_form(formula: Formula) -> bool:
    """True iff every quantifier over a database-dependent scope is ADOM."""
    for sub in formula.walk():
        if isinstance(sub, (Exists, Forall)) and sub.kind is not QuantKind.ADOM:
            if not is_database_free(sub.body):
                return False
    return True


def query_constants(formula: Formula) -> frozenset[str]:
    """String literals occurring in the formula (incl. graph_const params)."""
    consts: set[str] = {""}
    for sub in formula.walk():
        if isinstance(sub, Atom) and sub.pred == "graph_const":
            consts.add(sub.param or "")
        if isinstance(sub, (Atom, RelAtom)):
            for t in sub.args:
                for node in _term_walk(t):
                    if isinstance(node, StrConst):
                        consts.add(node.value)
    return frozenset(consts)


def _term_walk(term):
    yield term
    from repro.logic.terms import AddFirst, AddLast, Lcp, TrimFirst

    if isinstance(term, (AddFirst, AddLast, TrimFirst)):
        yield from _term_walk(term.inner)
    elif isinstance(term, Lcp):
        yield from _term_walk(term.left)
        yield from _term_walk(term.right)


# --------------------------------------------------------------- bound plans


def adom_plan(schema: Schema, extra_constants: frozenset[str]) -> Plan:
    """Unary plan computing ``adom(D) u {eps} u constants``.

    This is the *base of the gamma bound* (the paper's Section 6.1), which
    includes ``eps`` by definition.  The domain an ADOM *quantifier* ranges
    over is :func:`strict_adom_plan` — exactly ``adom(D)``, matching the
    direct and automata engines.
    """
    plan: Plan = EpsilonRel()
    for name in schema.relation_names:
        arity = schema.arity(name)
        for i in range(arity):
            plan = Union(plan, Project(BaseRel(name, arity), (i,)))
    for const in sorted(extra_constants):
        plan = Union(plan, _constant_plan(const))
    return plan


def strict_adom_plan(schema: Schema) -> Plan:
    """Unary plan computing exactly ``adom(D)`` — no implicit ``eps``."""
    plan: Plan | None = None
    for name in schema.relation_names:
        arity = schema.arity(name)
        for i in range(arity):
            proj = Project(BaseRel(name, arity), (i,))
            plan = proj if plan is None else Union(plan, proj)
    if plan is None:  # no relations: the active domain is empty
        return Difference(EpsilonRel(), EpsilonRel())
    return plan


def _constant_plan(value: str) -> Plan:
    """Unary plan for ``{value}`` built from ``R_eps`` and ``add`` ops."""
    plan: Plan = EpsilonRel()
    for i, ch in enumerate(value):
        plan = Project(AddLastOp(plan, 0, ch), (1,))
    return plan


def bound_plan(
    structure: StringStructure,
    schema: Schema,
    slack: int,
    constants: frozenset[str],
) -> Plan:
    """The paper's ``gamma``-bound as an algebra plan (unary).

    * S / S_reg: prefixes of the base, extended right by <= ``slack``;
    * S_left: prefixes extended by <= ``slack`` symbols on either side;
    * S_len: all strings no longer than the longest base string plus
      ``slack`` (via ``down``).
    """
    base = adom_plan(schema, constants)
    closure = Project(PrefixOp(base, 0), (1,))
    if structure.name == "S_len":
        bounded: Plan = Union(closure, Project(DownOp(base, 0), (1,)))
        extenders = ["last"]
    elif structure.name == "S_left":
        bounded = closure
        extenders = ["last", "first"]
    else:
        bounded = closure
        extenders = ["last"]
    plan = bounded
    for _ in range(slack):
        round_plan = plan
        for a in structure.alphabet.symbols:
            if "last" in extenders:
                round_plan = Union(round_plan, Project(AddLastOp(plan, 0, a), (1,)))
            if "first" in extenders:
                round_plan = Union(round_plan, Project(AddFirstOp(plan, 0, a), (1,)))
        plan = round_plan
    return plan


# ----------------------------------------------------------------- compiler


@dataclass(frozen=True)
class CompiledQuery:
    """A compiled plan plus its output column names (sorted free vars)."""

    plan: Plan
    columns: tuple[str, ...]
    dialect: AlgebraDialect

    def evaluate(self, db) -> frozenset[tuple[str, ...]]:
        return self.dialect.evaluate(self.plan, db)


class _Compiler:
    def __init__(self, structure: StringStructure, schema: Schema, slack: int, bound: Plan):
        self.structure = structure
        self.schema = schema
        self.slack = slack
        self.bound = bound
        self.adom = strict_adom_plan(schema)

    # Translation: returns (plan, vars) with vars = sorted(free(f)).

    def translate(self, f: Formula) -> tuple[Plan, tuple[str, ...]]:
        if is_database_free(f):
            return self._condition_plan(f)
        if isinstance(f, RelAtom):
            return self._rel_atom(f)
        if isinstance(f, Not):
            inner, variables = self.translate(f.inner)
            full = self._bound_power(variables)
            return Difference(full, inner), variables
        if isinstance(f, And):
            plans = [self.translate(p) for p in f.parts]
            plan, variables = plans[0]
            for other_plan, other_vars in plans[1:]:
                plan, variables = self._join(plan, variables, other_plan, other_vars)
            return plan, variables
        if isinstance(f, Or):
            target = tuple(sorted(f.free_variables()))
            acc = None
            for part in f.parts:
                plan, variables = self.translate(part)
                plan = self._pad_to(plan, variables, target)
                acc = plan if acc is None else Union(acc, plan)
            assert acc is not None
            return acc, target
        if isinstance(f, Exists):
            if f.kind is not QuantKind.ADOM:
                raise CompileError(
                    "quantifier over a database-dependent scope must be ADOM "
                    f"(found {f.kind.value!r}); rewrite via the collapse first"
                )
            body_plan, body_vars = self.translate(f.body)
            if f.var not in body_vars:
                # exists adom x: phi (x unused) -- true iff adom nonempty.
                nonempty = Project(self.adom, ())
                return Product(body_plan, nonempty), body_vars
            # Restrict to adom, then project away.
            adom_restr, _ = self._join(body_plan, body_vars, self.adom_named(f.var), (f.var,))
            index = body_vars.index(f.var)
            out_vars = tuple(v for v in body_vars if v != f.var)
            indices = tuple(i for i, v in enumerate(body_vars) if v != f.var)
            return Project(adom_restr, indices), out_vars
        if isinstance(f, Forall):
            return self.translate(Not(Exists(f.var, Not(f.body), f.kind)))
        if isinstance(f, (TrueF, FalseF)):  # database-free; unreachable
            return self._condition_plan(f)
        raise CompileError(f"cannot compile node {f!r}")

    def adom_named(self, var: str) -> Plan:
        return self.adom

    # -- helpers -------------------------------------------------------------

    def _condition_plan(self, f: Formula) -> tuple[Plan, tuple[str, ...]]:
        """A database-free subformula: candidates from the bound, sigma filter."""
        variables = tuple(sorted(f.free_variables()))
        base = self._bound_power(variables)
        mapping = {v: col(i) for i, v in enumerate(variables)}
        condition = f.substitute(mapping)
        return Select(base, condition), variables

    def _bound_power(self, variables: tuple[str, ...]) -> Plan:
        if not variables:
            return Project(EpsilonRel(), ())
        plan: Plan = self.bound
        for _ in variables[1:]:
            plan = Product(plan, self.bound)
        return plan

    def _rel_atom(self, f: RelAtom) -> tuple[Plan, tuple[str, ...]]:
        arity = self.schema.arity(f.name)
        if arity != len(f.args):
            raise CompileError(f"arity mismatch on {f.name}")
        plan: Plan = BaseRel(f.name, arity)
        names: list[str] = []
        for t in f.args:
            if not isinstance(t, Var):
                raise CompileError("flatten_terms must run before compilation")
            names.append(t.name)
        # Repeated variables: select equality on the repeated columns.
        for j in range(len(names)):
            for i in range(j):
                if names[i] == names[j]:
                    plan = Select(plan, Atom("eq", (col(i), col(j))))
        variables = tuple(sorted(set(names)))
        indices = tuple(names.index(v) for v in variables)
        return Project(plan, indices), variables

    def _join(
        self,
        left: Plan,
        left_vars: tuple[str, ...],
        right: Plan,
        right_vars: tuple[str, ...],
    ) -> tuple[Plan, tuple[str, ...]]:
        """Natural join on shared variable names."""
        product = Product(left, right)
        n = len(left_vars)
        conditions = []
        for j, v in enumerate(right_vars):
            if v in left_vars:
                conditions.append(Atom("eq", (col(left_vars.index(v)), col(n + j))))
        plan: Plan = product
        for c in conditions:
            plan = Select(plan, c)
        target = tuple(sorted(set(left_vars) | set(right_vars)))
        indices = []
        for v in target:
            if v in left_vars:
                indices.append(left_vars.index(v))
            else:
                indices.append(n + right_vars.index(v))
        return Project(plan, tuple(indices)), target

    def _pad_to(
        self, plan: Plan, variables: tuple[str, ...], target: tuple[str, ...]
    ) -> Plan:
        """Extend columns to ``target`` (sorted superset) with bound columns."""
        if variables == target:
            return plan
        missing = [v for v in target if v not in variables]
        padded: Plan = plan
        for _ in missing:
            padded = Product(padded, self.bound)
        current = list(variables) + missing
        indices = tuple(current.index(v) for v in target)
        return Project(padded, indices)


def compile_query(
    formula: Formula,
    structure: StringStructure,
    schema: Schema,
    slack: int = 1,
) -> CompiledQuery:
    """Compile a collapsed-form RC(M) query into an RA(M) plan.

    Raises :class:`CompileError` when a non-ADOM quantifier scopes over a
    database relation — put the query in collapsed form first (Theorem 1/6
    guarantees one exists; in practice write database quantifiers as
    ``exists adom`` / ``forall adom``).
    """
    structure.check_formula(formula)
    flat = flatten_terms(formula)
    if not is_collapsed_form(flat):
        raise CompileError(
            "query is not in collapsed form: database relations occur under "
            "non-ADOM quantifiers"
        )
    constants = query_constants(flat)
    bound = bound_plan(structure, schema, slack, constants)
    compiler = _Compiler(structure, schema, slack, bound)
    plan, variables = compiler.translate(flat)
    target = tuple(sorted(formula.free_variables()))
    plan = compiler._pad_to(plan, variables, target)
    dialect = FOR_STRUCTURE[structure.name](structure.alphabet)
    dialect.validate(plan)
    return CompiledQuery(plan, target, dialect)
