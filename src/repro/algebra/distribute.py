"""Distributivity analysis: when does a query scatter over shards?

The shard coordinator (:mod:`repro.shard`) evaluates a query ``Q`` on a
horizontally partitioned database ``D = D_1 ∪ ... ∪ D_n`` by running
``Q`` shard-local and unioning at the root.  That is only sound when

.. math::  Q(D) \\;=\\; Q(D_1) \\cup \\dots \\cup Q(D_n)

— i.e. when ``Q`` *distributes over horizontal partitioning*.  This
module decides that question conservatively, with two independent
certificates (either suffices):

**Plan-shape certificate** (algebra-eligible queries).  Compile the
query to its optimized RA(M) plan (:func:`repro.algebra.exec.
compile_for_execution`) and require every operator to be *row-local*:
``BaseRel``/``EpsilonRel`` at the leaves and ``Select`` (database-free
condition), ``Project``, ``Union`` and the per-tuple string operators
(``PrefixOp``, ``AddLastOp``, ``AddFirstOp``, ``TrimFirstOp``,
``InsertAtOp``, ``DownOp``) above them.  Each such operator commutes
with union of its input relations, so the whole plan does by induction.
``Product``/``Join`` need tuple pairs from *different* shards and
``Difference`` can subtract a tuple whose witness lives elsewhere —
plans containing them do not distribute and force the single-shard
fallback.

**Guarded-formula certificate** (the direct engine's regime, where no
algebra plan exists).  In NNF the query must be a conjunction with
exactly one *positive* relation atom over bare variables — the
**anchor**, which localizes every output tuple to the shard that stores
it — while every other conjunct is database-free and only quantifies
with *guard-rooted* PREFIX quantifiers:

* ``exists prefix y: (y <<= t & ...)`` — some conjunct bounds ``y`` by
  a prefix of an anchored variable ``t``;
* ``forall prefix y: (!(y <<= t) | ...)`` — some disjunct discharges
  every ``y`` that is *not* a prefix of an anchored ``t``.

Soundness: a PREFIX quantifier ranges over ``prefix(adom(D))`` (plus
slack extensions), which *shrinks* on a shard — but every prefix of a
locally stored anchor string is in the local closure, and the guard
makes all other candidates irrelevant (witnesses must be prefixes of
``t``; non-prefixes satisfy the universal vacuously).  So the condition
evaluates identically on the shard and on the whole database for every
locally anchored tuple.  ADOM and LENGTH quantifiers are rejected:
their domains draw on strings from *other* shards with no guard to
localize them.

:func:`analyze` also recognizes **routable** queries under by-relation
partitioning: when every relation the optimized plan reads lives whole
on one shard, any plan shape (joins included) evaluates there unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.database.instance import Database
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import Var
from repro.logic.transform import to_nnf
from repro.structures.base import StringStructure

__all__ = [
    "Decomposition",
    "analyze",
    "guarded_certificate",
    "plan_shape_certificate",
]


#: Plan operators that commute with union of their input relations: the
#: leaves plus everything that maps each input row to output rows
#: independently of the rest of the relation (and of the database).
_ROW_LOCAL_OPS = frozenset({
    "BaseRel",
    "EpsilonRel",
    "Select",
    "Project",
    "Union",
    "PrefixOp",
    "AddLastOp",
    "AddFirstOp",
    "TrimFirstOp",
    "InsertAtOp",
    "DownOp",
})


@dataclass(frozen=True)
class Decomposition:
    """The analysis verdict the shard coordinator executes.

    ``mode`` is ``"scatter"`` (run on every shard, union at the root),
    ``"route"`` (every referenced relation lives whole on one shard —
    run there alone) or ``"single"`` (no certificate: fall back to one
    worker holding the full database).  ``certificate`` names the proof
    that applied (``"plan-shape"`` / ``"guarded-formula"`` / ``None``)
    and ``reason`` is the one-line justification EXPLAIN shows.
    """

    mode: str                      # "scatter" | "route" | "single"
    certificate: Optional[str]
    reason: str
    merge: str = "union-dedup"
    #: For "route": the shard index owning every referenced relation.
    shard: Optional[int] = None
    #: Relations the certificate saw (plan leaves or the anchor atom).
    relations: tuple[str, ...] = field(default=())

    @property
    def distributes(self) -> bool:
        return self.mode != "single"

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "certificate": self.certificate,
            "reason": self.reason,
            "merge": self.merge,
            "shard": self.shard,
            "relations": list(self.relations),
        }


# ----------------------------------------------------- plan-shape certificate


def plan_shape_certificate(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: int,
) -> tuple[bool, tuple[str, ...], str]:
    """``(ok, plan_relations, reason)`` for the optimized-plan analysis.

    Only meaningful for algebra-eligible queries (the caller checks);
    compilation reuses :func:`~repro.algebra.exec.compile_for_execution`'s
    module-level cache, so planning twice costs one dict lookup.
    """
    from repro.algebra.compile import CompileError
    from repro.algebra.exec import compile_for_execution

    try:
        _, optimized = compile_for_execution(
            formula, structure, database.schema, slack=slack
        )
    except CompileError as exc:
        return False, (), f"query does not compile to RA(M): {exc}"
    relations = tuple(sorted({
        node.name for node in optimized.walk() if type(node).__name__ == "BaseRel"
    }))
    for node in optimized.walk():
        kind = type(node).__name__
        if kind not in _ROW_LOCAL_OPS:
            return False, relations, (
                f"optimized plan contains {kind}: needs tuples from more "
                "than one shard"
            )
    return True, relations, (
        "every plan operator is row-local (commutes with union of its "
        "inputs)"
    )


# ------------------------------------------------ guarded-formula certificate


def _bare_var(term) -> Optional[str]:
    return term.name if isinstance(term, Var) else None


def _prefix_guard_target(atom: Formula) -> Optional[tuple[str, str]]:
    """``(bound_var, root_var)`` when ``atom`` is ``y <<= t`` / ``y << t``
    / ``y = t`` over bare variables, else ``None``."""
    if not isinstance(atom, Atom) or atom.pred not in ("prefix", "sprefix", "eq"):
        return None
    if len(atom.args) != 2:
        return None
    y, t = _bare_var(atom.args[0]), _bare_var(atom.args[1])
    if y is None or t is None:
        return None
    return y, t


def _condition_guarded(f: Formula, rooted: frozenset[str]) -> tuple[bool, str]:
    """Is the database-free condition ``f`` guard-rooted in ``rooted``?"""
    if isinstance(f, (TrueF, FalseF, Atom)):
        return True, ""
    if isinstance(f, RelAtom):
        return False, f"condition mentions database relation {f.name!r}"
    if isinstance(f, Not):
        return _condition_guarded(f.inner, rooted)
    if isinstance(f, (And, Or)):
        for p in f.parts:
            ok, why = _condition_guarded(p, rooted)
            if not ok:
                return ok, why
        return True, ""
    if isinstance(f, (Exists, Forall)):
        if f.kind is QuantKind.NATURAL:
            # Sigma* does not depend on the database at all — no shard
            # can change the quantifier's range.
            return _condition_guarded(f.body, rooted)
        if f.kind is not QuantKind.PREFIX:
            return False, (
                f"{f.kind.value} quantifier ranges over the whole "
                "database's strings; no guard can localize it to a shard"
            )
        guard_found = False
        if isinstance(f, Exists):
            # exists prefix y: needs a conjunct  y <<= t  with t rooted.
            parts = f.body.parts if isinstance(f.body, And) else (f.body,)
            for p in parts:
                target = _prefix_guard_target(p)
                if target and target[0] == f.var and target[1] in rooted:
                    guard_found = True
        else:
            # forall prefix y: needs a disjunct  !(y <<= t)  with t rooted.
            parts = f.body.parts if isinstance(f.body, Or) else (f.body,)
            for p in parts:
                if isinstance(p, Not):
                    target = _prefix_guard_target(p.inner)
                    if target and target[0] == f.var and target[1] in rooted:
                        guard_found = True
        if not guard_found:
            q = "exists" if isinstance(f, Exists) else "forall"
            need = "a conjunct" if isinstance(f, Exists) else "a disjunct"
            op = "y <<= t" if isinstance(f, Exists) else "!(y <<= t)"
            return False, (
                f"{q} prefix {f.var} is unguarded: needs {need} "
                f"`{op.replace('y', f.var)}` with t anchored"
            )
        return _condition_guarded(f.body, rooted | {f.var})
    return False, f"cannot analyze condition node {type(f).__name__}"


def guarded_certificate(formula: Formula) -> tuple[bool, Optional[str], str]:
    """``(ok, anchor_relation, reason)`` for the guarded-fragment analysis.

    See the module docstring for the fragment and its soundness argument.
    """
    nnf = to_nnf(formula)
    parts = nnf.parts if isinstance(nnf, And) else (nnf,)
    anchors = [p for p in parts if isinstance(p, RelAtom)]
    if len(anchors) != 1:
        if not anchors:
            return False, None, (
                "no positive relation atom anchors the output to a shard"
            )
        return False, None, (
            f"{len(anchors)} relation atoms: a join may pair tuples from "
            "different shards"
        )
    anchor = anchors[0]
    anchor_vars = frozenset(
        t.name for t in anchor.args if isinstance(t, Var)
    )
    if any(not isinstance(t, Var) for t in anchor.args):
        return False, None, (
            f"anchor {anchor.name} has non-variable arguments: the "
            "output value need not be stored on the anchoring shard"
        )
    free = formula.free_variables()
    if not free <= anchor_vars:
        loose = sorted(free - anchor_vars)
        return False, None, (
            f"free variable(s) {loose} not bound by the anchor atom"
        )
    for p in parts:
        if p is anchor:
            continue
        if any(isinstance(sub, RelAtom) for sub in p.walk()):
            return False, None, (
                "a second database atom occurs outside the anchor "
                "conjunct"
            )
        ok, why = _condition_guarded(p, anchor_vars)
        if not ok:
            return False, None, why
    return True, anchor.name, (
        f"single anchor {anchor.name} with guard-rooted prefix conditions"
    )


# ------------------------------------------------------------------- analyze


def analyze(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: int,
    relation_shards: Optional[dict[str, int]] = None,
) -> Decomposition:
    """Decide how (whether) the query decomposes over shards.

    ``relation_shards`` maps relation names to owning shard indices when
    the database is partitioned by relation (each relation whole on one
    shard); leave it ``None`` for hash-by-tuple partitioning.  The
    caller is responsible for the backend-level eligibility gate
    (anchored output, no NATURAL quantifiers at the top level).
    """
    from repro.engine.planner import algebra_eligible

    relations = tuple(sorted(formula.relation_names()))
    if not relations:
        if not formula.database_dependent():
            # Truly database-free (no relations, all quantifiers
            # NATURAL): every shard computes the same answer, so
            # scattering only duplicates work.  Route it to one worker.
            return Decomposition(
                mode="route",
                certificate="guarded-formula",
                reason="database-free query: any single shard answers it",
                shard=0,
                relations=(),
            )
        # Relation-free but a restricted quantifier remains: ADOM,
        # PREFIX, and LENGTH domains all derive from adom(D), and a
        # partition's active domain is a strict subset of the whole
        # database's — a single shard could answer differently.
        return Decomposition(
            mode="single",
            certificate=None,
            reason=(
                "relation-free but database-dependent: restricted "
                "quantifier domains draw on the whole database's "
                "active domain, which no single partition holds"
            ),
        )

    plan_relations: tuple[str, ...] = relations
    plan_ok = False
    plan_why = "not an algebra-eligible query"
    if algebra_eligible(formula, structure):
        plan_ok, plan_relations, plan_why = plan_shape_certificate(
            formula, structure, database, slack
        )
        if not plan_relations:
            plan_relations = relations

    # By-relation partitioning: if one shard owns every relation the
    # plan reads (or, failing a plan, every relation the formula
    # mentions), the query evaluates there unchanged — even join shapes.
    if relation_shards is not None:
        owners = {
            relation_shards.get(name) for name in (plan_relations or relations)
        }
        if len(owners) == 1 and None not in owners:
            (owner,) = owners
            return Decomposition(
                mode="route",
                certificate="plan-shape" if plan_ok else "guarded-formula",
                reason=(
                    f"all referenced relations live on shard {owner} "
                    "(by-relation partitioning)"
                ),
                shard=owner,
                relations=plan_relations or relations,
            )

    # Both partitioning schemes produce a horizontal partition of every
    # relation (by-relation is the degenerate case: all rows of a
    # relation on one shard, none elsewhere), so the scatter
    # certificates apply to either scheme.
    if plan_ok:
        return Decomposition(
            mode="scatter",
            certificate="plan-shape",
            reason=plan_why,
            relations=plan_relations,
        )
    guarded_ok, anchor, guarded_why = guarded_certificate(formula)
    if guarded_ok:
        return Decomposition(
            mode="scatter",
            certificate="guarded-formula",
            reason=guarded_why,
            relations=(anchor,) if anchor else (),
        )
    return Decomposition(
        mode="single",
        certificate=None,
        reason=f"{plan_why}; {guarded_why}",
    )
