"""Algebra -> calculus translation (the easy direction of Theorems 4/8).

Every RA(M) operator is first-order definable over M, so every plan has an
equivalent RC(M) formula; combined with :mod:`repro.algebra.compile` this
gives the two inclusions of ``safe RC(M) = RA(M)``.  Output columns map to
variables ``x0 .. x{n-1}``.
"""

from __future__ import annotations

from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    InsertAtOp,
    Join,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
)
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.errors import EvaluationError
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
)
from repro.logic.terms import (
    AddFirst,
    AddLast,
    EPS,
    InsertAt,
    StrConst,
    Term,
    TrimFirst,
    Var,
)


def column_var(i: int) -> Var:
    """The variable standing for output column ``i``."""
    return Var(f"x{i}")


def to_calculus(plan: Plan) -> Formula:
    """An RC(M) formula equivalent to ``plan``, free in ``x0..x{n-1}``."""
    counter = [0]
    return _translate(plan, [column_var(i).name for i in range(plan.arity)], counter)


def _fresh(counter: list[int]) -> str:
    counter[0] += 1
    return f"_a{counter[0]}"


def _translate(plan: Plan, names: list[str], counter: list[int]) -> Formula:
    """Formula asserting ``(names...) in plan``."""
    # Compiled plans can be deep (the gamma-bound repeats per quantifier),
    # so translation honors service deadlines and shows up in METRICS.
    checkpoint()
    METRICS.inc("algebra.to_calculus_nodes")
    if isinstance(plan, BaseRel):
        return RelAtom(plan.name, tuple(Var(n) for n in names))
    if isinstance(plan, EpsilonRel):
        return Atom("eq", (Var(names[0]), EPS))
    if isinstance(plan, Select):
        mapping = {f"c{i}": Var(n) for i, n in enumerate(names)}
        cond = plan.condition.substitute(mapping)
        return And((_translate(plan.child, names, counter), cond))
    if isinstance(plan, Project):
        child_arity = plan.child.arity
        child_names = [None] * child_arity  # type: ignore[list-item]
        equalities: list[Formula] = []
        for out_pos, child_pos in enumerate(plan.indices):
            if child_names[child_pos] is None:
                child_names[child_pos] = names[out_pos]
            else:
                # Duplicated column: assert equality of the outputs.
                equalities.append(
                    Atom("eq", (Var(child_names[child_pos]), Var(names[out_pos])))
                )
        fresh = []
        for pos in range(child_arity):
            if child_names[pos] is None:
                name = _fresh(counter)
                child_names[pos] = name
                fresh.append(name)
        body = _translate(plan.child, child_names, counter)  # type: ignore[arg-type]
        if equalities:
            body = And((body, *equalities))
        for name in reversed(fresh):
            body = Exists(name, body, QuantKind.NATURAL)
        return body
    if isinstance(plan, Product):
        n = plan.left.arity
        return And(
            (
                _translate(plan.left, names[:n], counter),
                _translate(plan.right, names[n:], counter),
            )
        )
    if isinstance(plan, Join):
        # Fused hash join: re-expand to the conjunction it was fused from.
        n = plan.left.arity
        parts: list[Formula] = [
            _translate(plan.left, names[:n], counter),
            _translate(plan.right, names[n:], counter),
        ]
        parts.extend(
            Atom("eq", (Var(names[i]), Var(names[n + j]))) for i, j in plan.pairs
        )
        if plan.residual is not None:
            mapping = {f"c{i}": Var(name) for i, name in enumerate(names)}
            parts.append(plan.residual.substitute(mapping))
        return And(tuple(parts))
    if isinstance(plan, Union):
        return Or(
            (
                _translate(plan.left, names, counter),
                _translate(plan.right, names, counter),
            )
        )
    if isinstance(plan, Difference):
        return And(
            (
                _translate(plan.left, names, counter),
                Not(_translate(plan.right, names, counter)),
            )
        )
    if isinstance(plan, PrefixOp):
        new = names[-1]
        base = _translate(plan.child, names[:-1], counter)
        return And((base, Atom("prefix", (Var(new), Var(names[plan.index])))))
    if isinstance(plan, AddLastOp):
        new = names[-1]
        base = _translate(plan.child, names[:-1], counter)
        return And(
            (base, Atom("eq", (Var(new), AddLast(Var(names[plan.index]), plan.symbol))))
        )
    if isinstance(plan, AddFirstOp):
        new = names[-1]
        base = _translate(plan.child, names[:-1], counter)
        return And(
            (base, Atom("eq", (Var(new), AddFirst(Var(names[plan.index]), plan.symbol))))
        )
    if isinstance(plan, TrimFirstOp):
        new = names[-1]
        base = _translate(plan.child, names[:-1], counter)
        return And(
            (base, Atom("eq", (Var(new), TrimFirst(Var(names[plan.index]), plan.symbol))))
        )
    if isinstance(plan, InsertAtOp):
        new = names[-1]
        base = _translate(plan.child, names[:-1], counter)
        term = InsertAt(
            Var(names[plan.index]), Var(names[plan.prefix_index]), plan.symbol
        )
        return And((base, Atom("eq", (Var(new), term))))
    if isinstance(plan, DownOp):
        new = names[-1]
        base = _translate(plan.child, names[:-1], counter)
        return And((base, Atom("len_le", (Var(new), Var(names[plan.index])))))
    raise EvaluationError(f"cannot translate plan node {plan!r}")
