"""Compiled-plan codegen: fuse optimized algebra plans into Python closures.

The interpreted executor (:mod:`repro.algebra.exec`) pays per-tuple
dispatch at every operator boundary: each ``Select`` call re-enters
``_ConditionChecker.check``, each ``Join`` rebuilds key lambdas, each
``Project`` materializes an intermediate frozenset.  This module walks the
same ``optimize_for_execution`` plan once and *emits Python source* for a
single fused pipeline:

* scan -> select -> project chains collapse into one loop body, with
  cheap predicates (``eq``/``last``/``prefix``/``sprefix`` over column
  variables and constants) inlined as plain expressions and everything
  else routed through a pre-built checker closed over by the function;
* ``Join``/semi-join hash tables are built once per run, outside the
  probe loop, with the build side chosen by cardinality at run time;
* ``Union``/``Difference`` become frozenset ``|``/``-`` on
  already-projected streams;
* an optional numpy columnar path handles wide ``BaseRel`` scans whose
  fused ops are all vectorizable (bit-identical to the pure loop, which
  stays in the generated source as the runtime fallback branch).

The emitted source is ``compile()``/``exec``-ed into a closure and cached
in an LRU (:class:`~repro.engine.cache.AutomatonCache` discipline,
``codegen.cache.*`` counters) keyed by *(structure, alphabet, slack,
schema, canonical fingerprint)*.  Generated code is data-independent —
the closure takes the database at call time — so row-only deltas reuse
closures and only schema changes recompile; answer freshness is the
backend's job (``codegen-result`` whole-result cache keyed by database
fingerprint, promoted along delta chains).

This is the only module in the repository allowed to call
``compile``/``exec`` (enforced by ``tools/lint_codegen.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

try:  # numpy is optional; the generated source keeps a pure branch.
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from repro.algebra.exec import _is_semi_join, compile_for_execution
from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    EpsilonRel,
    InsertAtOp,
    Join,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
    _get_checker,
)
from repro.database.schema import Schema
from repro.engine.cache import AutomatonCache, DEFAULT_MAXSIZE
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.logic.canonical import canonical_fingerprint, canonicalize
from repro.logic.formulas import And, Atom, FalseF, Formula, Not, Or, TrueF
from repro.logic.terms import StrConst, Var
from repro.structures.base import StringStructure

#: Minimum source rows before the columnar branch engages.  Must stay >= 1:
#: the pure branch handles the empty relation, whose ``np.array`` would be
#: 1-D and break fancy indexing.
_NP_MIN_ROWS = 64

#: Column-appending ops that fuse into the row loop like selects and
#: projections do.  ``PrefixOp`` is the only one-to-many among them (one
#: row expands to ``|s|+1``); the rest are per-row transforms.
_APPENDERS = (PrefixOp, AddLastOp, AddFirstOp, TrimFirstOp, InsertAtOp)

#: Plan nodes the emitter knows how to fuse.  ``DownOp`` deliberately
#: stays interpreted: its expansion is exponential in string length
#: (Section 6.2's "very expensive ... unavoidable" operator), so the
#: structured fallback to the interpreted executor is the honest path.
_SUPPORTED = (
    BaseRel, EpsilonRel, Select, Project, Product, Join, Union, Difference,
) + _APPENDERS

_CHECKPOINT_MASK = 255


class UnsupportedPlan(Exception):
    """Raised by the emitter on a plan shape it cannot fuse."""


@dataclass(frozen=True)
class _Rejected:
    """Negative closure-cache entry: this shape is known not to compile."""

    reason: str


@dataclass
class GeneratedPipeline:
    """A compiled plan: generated source + the executable closure."""

    source: str
    fn: Callable
    columns: tuple[str, ...]
    stages: tuple[dict, ...]
    line_count: int
    np_stages: int
    fingerprint: str

    def run(self, database) -> tuple[frozenset, list[int]]:
        """Execute against ``database``; returns (rows, per-stage row counts)."""
        stage_rows: list[int] = []
        rows = self.fn(database, stage_rows)
        return rows, stage_rows


def plan_supported(plan: Plan) -> tuple[bool, str]:
    """Shape gate: every node in the plan must be fuseable."""
    for node in plan.walk():
        if not isinstance(node, _SUPPORTED):
            return (
                False,
                f"plan contains {type(node).__name__}, which codegen does not fuse",
            )
    return True, "fuseable plan shape"


class _Emitter:
    """Walks a plan and accumulates the fused pipeline's source lines.

    ``emit`` returns the local-variable name holding a node's materialized
    frozenset; structurally equal subtrees share one variable (plan nodes
    are frozen dataclasses, so the memo gives CSE for free).
    """

    def __init__(self, structure: StringStructure):
        self.structure = structure
        self.lines: list[str] = []
        self.env: dict = {
            "_checkpoint": checkpoint,
            "_np": _np,
            "_EPS_REL": frozenset({("",)}),
        }
        self.stages: list[dict] = []
        self._memo: dict[Plan, str] = {}
        self._checker_names: dict[str, str] = {}
        self._n = 0
        # Inlining predicates is only sound when the structure evaluates
        # them with the stock semantics the emitter mirrors.
        self._inline_ok = (
            type(structure)._eval_pred is StringStructure._eval_pred
        )

    # -- bookkeeping -------------------------------------------------------

    def fresh(self, prefix: str = "_v") -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def w(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _tickline(self, depth: int) -> None:
        self.w(depth, "_tick += 1")
        self.w(depth, f"if not _tick & {_CHECKPOINT_MASK}: _checkpoint()")

    def _stage(self, var: str, label: str, kind: str, numpy: bool = False) -> None:
        self.w(1, f"_stage_rows.append(len({var}))")
        self.stages.append({"label": label, "kind": kind, "numpy": numpy})

    def _checker(self, condition: Formula) -> str:
        key = str(condition)
        name = self._checker_names.get(key)
        if name is None:
            name = f"_chk{len(self._checker_names)}"
            self._checker_names[key] = name
            self.env[name] = _get_checker(condition, self.structure).check
        return name

    @staticmethod
    def _key_expr(row: str, indices: list[int]) -> str:
        items = ", ".join(f"{row}[{i}]" for i in indices)
        if len(indices) == 1:
            items += ","
        return f"({items})"

    # -- predicate inlining ------------------------------------------------

    def _operand(self, term, row: str) -> Optional[str]:
        if isinstance(term, Var):
            name = term.name
            if name.startswith("c") and name[1:].isdigit():
                return f"{row}[{int(name[1:])}]"
            return None
        if isinstance(term, StrConst):
            return repr(term.value)
        return None

    def _scalar_pred(self, cond: Formula, row: str) -> Optional[str]:
        """Inline a condition as a plain expression, or None for the checker."""
        if not self._inline_ok:
            return None
        if isinstance(cond, TrueF):
            return "True"
        if isinstance(cond, FalseF):
            return "False"
        if isinstance(cond, Not):
            inner = self._scalar_pred(cond.inner, row)
            return None if inner is None else f"(not {inner})"
        if isinstance(cond, (And, Or)):
            glue = " and " if isinstance(cond, And) else " or "
            parts = [self._scalar_pred(p, row) for p in cond.parts]
            if any(p is None for p in parts):
                return None
            return "(" + glue.join(parts) + ")"
        if isinstance(cond, Atom):
            args = [self._operand(t, row) for t in cond.args]
            if any(a is None for a in args):
                return None
            if cond.pred == "eq" and len(args) == 2:
                return f"({args[0]} == {args[1]})"
            if cond.pred == "last" and len(args) == 1:
                param = cond.param or ""
                return f"({args[0]}.endswith({param!r}) and {args[0]} != '')"
            if cond.pred == "prefix" and len(args) == 2:
                return f"{args[1]}.startswith({args[0]})"
            if cond.pred == "sprefix" and len(args) == 2:
                return (
                    f"(len({args[0]}) < len({args[1]})"
                    f" and {args[1]}.startswith({args[0]}))"
                )
            return None
        return None

    def _vector_pred(self, cond: Formula, arr: str) -> Optional[str]:
        """Columnar form of a condition over ``arr`` (2-D object array)."""
        if not self._inline_ok:
            return None
        if isinstance(cond, Not):
            inner = self._vector_pred(cond.inner, arr)
            return None if inner is None else f"(~{inner})"
        if isinstance(cond, (And, Or)):
            glue = " & " if isinstance(cond, And) else " | "
            parts = [self._vector_pred(p, arr) for p in cond.parts]
            if any(p is None for p in parts):
                return None
            return "(" + glue.join(parts) + ")"
        if isinstance(cond, Atom) and cond.pred == "eq" and len(cond.args) == 2:
            cols = []
            for term in cond.args:
                if isinstance(term, Var):
                    name = term.name
                    if not (name.startswith("c") and name[1:].isdigit()):
                        return None
                    cols.append(f"{arr}[:, {int(name[1:])}]")
                elif isinstance(term, StrConst):
                    cols.append(repr(term.value))
                else:
                    return None
            if all(c.startswith("'") or c.startswith('"') for c in cols):
                return None  # const == const: no column involved
            return f"({cols[0]} == {cols[1]})"
        return None

    # -- node emission -----------------------------------------------------

    def emit(self, node: Plan) -> str:
        var = self._memo.get(node)
        if var is not None:
            return var
        if isinstance(node, (Select, Project) + _APPENDERS):
            var = self._emit_fused(node)
        elif isinstance(node, BaseRel):
            var = self.fresh()
            self.w(1, f"{var} = _db.relation({node.name!r})")
            self._stage(var, f"scan {node.name}", "Scan")
        elif isinstance(node, EpsilonRel):
            var = self.fresh()
            self.w(1, f"{var} = _EPS_REL")
            self._stage(var, "R_eps", "Scan")
        elif isinstance(node, Join):
            var = self._emit_join(node, [])
        elif isinstance(node, Product):
            var = self._emit_product(node, [])
        elif isinstance(node, Union):
            left, right = self.emit(node.left), self.emit(node.right)
            var = self.fresh()
            self.w(1, f"{var} = {left} | {right}")
            self._stage(var, "union", "Union")
        elif isinstance(node, Difference):
            left, right = self.emit(node.left), self.emit(node.right)
            var = self.fresh()
            self.w(1, f"{var} = {left} - {right}")
            self._stage(var, "difference", "AntiJoin")
        else:
            raise UnsupportedPlan(
                f"codegen does not fuse {type(node).__name__} nodes"
            )
        self._memo[node] = var
        return var

    def _emit_fused(self, top: Plan) -> str:
        """Peel a Select/Project chain off ``top`` and fuse it into the
        producer's loop (join probe, semi-join probe, cross, or scan)."""
        ops: list[tuple] = []
        cur = top
        while isinstance(cur, (Select, Project) + _APPENDERS) and not _is_semi_join(cur):
            if isinstance(cur, Select):
                ops.append(("select", cur.condition))
            elif isinstance(cur, Project):
                ops.append(("project", cur.indices))
            elif isinstance(cur, PrefixOp):
                ops.append(("prefix", cur.index))
            elif isinstance(cur, AddLastOp):
                self.structure.alphabet.check_string(cur.symbol)
                ops.append(("addlast", (cur.index, cur.symbol)))
            elif isinstance(cur, AddFirstOp):
                self.structure.alphabet.check_string(cur.symbol)
                ops.append(("addfirst", (cur.index, cur.symbol)))
            elif isinstance(cur, TrimFirstOp):
                ops.append(("trimfirst", (cur.index, cur.symbol)))
            else:
                self.structure.alphabet.check_string(cur.symbol)
                ops.append(("insertat", (cur.index, cur.prefix_index, cur.symbol)))
            cur = cur.child
        ops.reverse()
        if _is_semi_join(cur):
            return self._emit_semi_join(cur, ops)
        if isinstance(cur, Join):
            return self._emit_join(cur, ops)
        if isinstance(cur, Product):
            return self._emit_product(cur, ops)
        if isinstance(cur, BaseRel) and self._np_able(cur, ops):
            return self._emit_np_scan(cur, ops)
        src = self.emit(cur)
        var = self.fresh("_v")
        self._emit_loop_into(var, src, ops)
        self._stage(var, f"fused[{len(ops)} ops] over {self._src_label(cur)}", "FusedScan")
        return var

    @staticmethod
    def _src_label(node: Plan) -> str:
        if isinstance(node, BaseRel):
            return f"scan {node.name}"
        if isinstance(node, EpsilonRel):
            return "R_eps"
        return type(node).__name__.lower()

    def _emit_ops(
        self, depth: int, row: str, ops: list[tuple]
    ) -> tuple[int, str]:
        """Apply fused ops inside a loop body; returns the (possibly
        deeper) indent and the expression naming the current row.  The
        depth grows only on ``prefix`` ops, whose one-to-many expansion
        opens a nested loop; selects are ``continue`` guards, everything
        else rebinds the row variable."""
        for kind, payload in ops:
            if kind == "select":
                pred = self._scalar_pred(payload, row)
                if pred is None:
                    pred = f"{self._checker(payload)}({row})"
                self.w(depth, f"if not {pred}: continue")
                continue
            new = self.fresh("_p")
            if kind == "project":
                items = ", ".join(f"{row}[{i}]" for i in payload)
                if len(payload) == 1:
                    items += ","
                self.w(depth, f"{new} = ({items})")
            elif kind == "prefix":
                i = payload
                ix = self.fresh("_i")
                self.w(depth, f"for {ix} in range(len({row}[{i}]) + 1):")
                depth += 1
                self.w(depth, f"{new} = {row} + ({row}[{i}][:{ix}],)")
            elif kind == "addlast":
                i, sym = payload
                self.w(depth, f"{new} = {row} + ({row}[{i}] + {sym!r},)")
            elif kind == "addfirst":
                i, sym = payload
                self.w(depth, f"{new} = {row} + ({sym!r} + {row}[{i}],)")
            elif kind == "trimfirst":
                i, sym = payload
                s = f"{row}[{i}]"
                self.w(
                    depth,
                    f"{new} = {row} + "
                    f"(({s}[1:] if {s}.startswith({sym!r}) and {s} else ''),)",
                )
            else:  # insertat
                i, j, sym = payload
                s, p = f"{row}[{i}]", f"{row}[{j}]"
                self.w(
                    depth,
                    f"{new} = {row} + "
                    f"(({p} + {sym!r} + {s}[len({p}):] "
                    f"if {s}.startswith({p}) else ''),)",
                )
            row = new
        return depth, row

    def _emit_loop_into(
        self, var: str, src: str, ops: list[tuple], base_depth: int = 1
    ) -> None:
        d = base_depth
        out = self.fresh("_s")
        self.w(d, f"{out} = set()")
        self.w(d, f"{out}_add = {out}.add")
        self.w(d, f"for _r in {src}:")
        self._tickline(d + 1)
        depth, row = self._emit_ops(d + 1, "_r", ops)
        self.w(depth, f"{out}_add({row})")
        self.w(d, f"{var} = frozenset({out})")

    # -- joins -------------------------------------------------------------

    def _emit_join(self, node: Join, ops: list[tuple]) -> str:
        left = self.emit(node.left)
        right = self.emit(node.right)
        fused = list(ops)
        if node.residual is not None:
            fused = [("select", node.residual)] + fused
        lkey = [i for i, _ in node.pairs]
        rkey = [j for _, j in node.pairs]
        out = self.fresh("_s")
        var = self.fresh("_v")
        tbl = self.fresh("_t")
        self.w(1, f"{out} = set()")
        self.w(1, f"{out}_add = {out}.add")
        # Build on the smaller side, decided per run: generated code is
        # data-independent, cardinalities are not.
        self.w(1, f"if len({right}) <= len({left}):")
        self._emit_hash_side(2, out, tbl, right, left, rkey, lkey, "_p + _b", fused)
        self.w(1, "else:")
        self._emit_hash_side(2, out, tbl, left, right, lkey, rkey, "_b + _p", fused)
        self.w(1, f"{var} = frozenset({out})")
        label = f"hashjoin on {node.pairs}"
        if fused:
            label += f" +{len(fused)} fused ops"
        self._stage(var, label, "HashJoin")
        return var

    def _emit_hash_side(
        self,
        d: int,
        out: str,
        tbl: str,
        build: str,
        probe: str,
        bkey: list[int],
        pkey: list[int],
        row_expr: str,
        ops: list[tuple],
    ) -> None:
        self.w(d, f"{tbl} = {{}}")
        self.w(d, f"{tbl}_set = {tbl}.setdefault")
        self.w(d, f"for _b in {build}:")
        self._tickline(d + 1)
        self.w(d + 1, f"{tbl}_set({self._key_expr('_b', bkey)}, []).append(_b)")
        self.w(d, f"{tbl}_get = {tbl}.get")
        self.w(d, f"for _p in {probe}:")
        self._tickline(d + 1)
        self.w(d + 1, f"_m = {tbl}_get({self._key_expr('_p', pkey)})")
        self.w(d + 1, "if _m is None: continue")
        self.w(d + 1, "for _b in _m:")
        self.w(d + 2, f"_row = {row_expr}")
        depth, row = self._emit_ops(d + 2, "_row", ops)
        self.w(depth, f"{out}_add({row})")

    def _emit_semi_join(self, proj: Project, ops: list[tuple]) -> str:
        join = proj.child
        left = self.emit(join.left)
        right = self.emit(join.right)
        pkey = [i for i, _ in join.pairs]
        bkey = [j for _, j in join.pairs]
        keys = self.fresh("_k")
        out = self.fresh("_s")
        var = self.fresh("_v")
        self.w(1, f"{keys} = set()")
        self.w(1, f"{keys}_add = {keys}.add")
        self.w(1, f"for _b in {right}:")
        self._tickline(2)
        self.w(2, f"{keys}_add({self._key_expr('_b', bkey)})")
        self.w(1, f"{out} = set()")
        self.w(1, f"{out}_add = {out}.add")
        self.w(1, f"for _p in {left}:")
        self._tickline(2)
        self.w(2, f"if {self._key_expr('_p', pkey)} not in {keys}: continue")
        items = ", ".join(f"_p[{i}]" for i in proj.indices)
        if len(proj.indices) == 1:
            items += ","
        self.w(2, f"_row = ({items})")
        depth, row = self._emit_ops(2, "_row", ops)
        self.w(depth, f"{out}_add({row})")
        self.w(1, f"{var} = frozenset({out})")
        self._stage(var, f"semijoin on {join.pairs}", "SemiJoin")
        return var

    def _emit_product(self, node: Product, ops: list[tuple]) -> str:
        left = self.emit(node.left)
        right = self.emit(node.right)
        out = self.fresh("_s")
        var = self.fresh("_v")
        self.w(1, f"{out} = set()")
        self.w(1, f"{out}_add = {out}.add")
        self.w(1, f"for _p in {left}:")
        self.w(2, f"for _b in {right}:")
        self._tickline(3)
        self.w(3, "_row = _p + _b")
        depth, row = self._emit_ops(3, "_row", ops)
        self.w(depth, f"{out}_add({row})")
        self.w(1, f"{var} = frozenset({out})")
        kind = "FilteredCross" if any(k == "select" for k, _ in ops) else "Product"
        self._stage(var, "cross", kind)
        return var

    # -- numpy columnar scan ----------------------------------------------

    def _np_able(self, base: BaseRel, ops: list[tuple]) -> bool:
        """Wide scan whose fused ops are all vectorizable: any number of
        columnar selects, then at most one trailing projection."""
        if _np is None or base.arity < 2:
            return False
        selects = 0
        seen_project = False
        for kind, payload in ops:
            if seen_project:
                return False
            if kind == "project":
                seen_project = True
            elif kind != "select" or self._vector_pred(payload, "_a") is None:
                return False
            else:
                selects += 1
        return selects > 0

    def _emit_np_scan(self, base: BaseRel, ops: list[tuple]) -> str:
        src = self.emit(base)
        arr = self.fresh("_a")
        keep = self.fresh("_f")
        var = self.fresh("_v")
        preds = [
            self._vector_pred(cond, arr)
            for kind, cond in ops
            if kind == "select"
        ]
        proj = next((idx for kind, idx in ops if kind == "project"), None)
        self.w(1, f"if _np is not None and len({src}) >= {int(_NP_MIN_ROWS)}:")
        self.w(2, f"{arr} = _np.array(list({src}), dtype=object)")
        self.w(2, f"{keep} = {arr}[{' & '.join(preds)}]")
        if proj is not None:
            cols = "[" + ", ".join(str(i) for i in proj) + "]"
            self.w(2, f"{var} = frozenset(map(tuple, {keep}[:, {cols}]))")
        else:
            self.w(2, f"{var} = frozenset(map(tuple, {keep}))")
        self.w(1, "else:")
        self._emit_loop_into(var, src, ops, base_depth=2)
        self._stage(var, f"columnar fused[{len(ops)} ops] over scan {base.name}",
                    "FusedScan", numpy=True)
        return var


# ---------------------------------------------------------------------------
# Source assembly + the closure cache
# ---------------------------------------------------------------------------


def build_pipeline(
    plan: Plan,
    columns: tuple[str, ...],
    structure: StringStructure,
    fingerprint: str,
) -> GeneratedPipeline:
    """Emit, compile, and exec the fused pipeline for ``plan``.

    Raises :class:`UnsupportedPlan` when the plan shape cannot be fused.
    """
    emitter = _Emitter(structure)
    final = emitter.emit(plan)
    header = [
        f"# codegen pipeline {fingerprint[:12]} ({structure.name})",
        "def _pipeline(_db, _stage_rows):",
        "    _tick = 0",
    ]
    source = "\n".join(header + emitter.lines + [f"    return {final}", ""])
    code = compile(source, f"<codegen:{fingerprint[:12]}>", "exec")
    namespace = dict(emitter.env)
    exec(code, namespace)
    METRICS.inc("codegen.compiles")
    return GeneratedPipeline(
        source=source,
        fn=namespace["_pipeline"],
        columns=columns,
        stages=tuple(emitter.stages),
        line_count=source.count("\n"),
        np_stages=sum(1 for s in emitter.stages if s["numpy"]),
        fingerprint=fingerprint,
    )


#: Compiled-closure cache.  Same LRU discipline as the automaton cache
#: (bounded, hits/misses/evictions), surfaced in QueryService.stats().
_CLOSURES = AutomatonCache(maxsize=DEFAULT_MAXSIZE, metrics_prefix="codegen.cache")


def closure_cache() -> AutomatonCache:
    return _CLOSURES


def pipeline_key(
    formula: Formula, structure: StringStructure, schema: Schema, slack: int
) -> tuple:
    """Closure-cache key.

    Generated source is data-independent, so there is no database
    fingerprint here: the schema stands in for the plan epoch (row-only
    deltas keep the schema, hence reuse the closure; schema-extending
    deltas recompile).  Result freshness is keyed separately by the
    backend's ``codegen-result`` cache entries.
    """
    return (
        "codegen-closure",
        structure.name,
        structure.alphabet.symbols,
        slack,
        schema,
        canonical_fingerprint(formula),
    )


def get_pipeline(
    formula: Formula,
    structure: StringStructure,
    schema: Schema,
    slack: int = 0,
) -> tuple[Optional[GeneratedPipeline], str]:
    """Fetch or compile the fused pipeline for ``formula``.

    Returns ``(pipeline, "hit"|"compiled")`` on success or
    ``(None, reason)`` when the shape is not fuseable — negative results
    are cached too, so repeated probes of an unsupported shape stay cheap.
    """
    key = pipeline_key(formula, structure, schema, slack)
    cached = _CLOSURES.get(key)
    if isinstance(cached, GeneratedPipeline):
        return cached, "hit"
    if isinstance(cached, _Rejected):
        return None, cached.reason
    try:
        compiled, optimized = compile_for_execution(
            formula, structure, schema, slack=slack
        )
    except Exception as exc:
        reason = f"algebra compile failed: {exc}"
        _CLOSURES.put(key, _Rejected(reason))
        return None, reason
    ok, why = plan_supported(optimized)
    if not ok:
        _CLOSURES.put(key, _Rejected(why))
        return None, why
    try:
        pipeline = build_pipeline(
            optimized, compiled.columns, structure, canonical_fingerprint(formula)
        )
    except UnsupportedPlan as exc:
        _CLOSURES.put(key, _Rejected(str(exc)))
        return None, str(exc)
    _CLOSURES.put(key, pipeline)
    return pipeline, "compiled"


def has_pipeline(
    formula: Formula, structure: StringStructure, schema: Schema, slack: int = 0
) -> bool:
    """True when a compiled closure is already cached (no stats impact:
    the planner peeks warmth without claiming a hit)."""
    return isinstance(
        _CLOSURES.peek(pipeline_key(formula, structure, schema, slack)),
        GeneratedPipeline,
    )


def shape_supported(
    formula: Formula, structure: StringStructure, schema: Schema
) -> tuple[bool, str]:
    """Eligibility probe at the planner's auto slack (0): is the optimized
    plan for ``formula`` fuseable?  Peeks the closure cache first."""
    cached = _CLOSURES.peek(pipeline_key(formula, structure, schema, 0))
    if isinstance(cached, GeneratedPipeline):
        return True, "compiled pipeline cached"
    if isinstance(cached, _Rejected):
        return False, cached.reason
    try:
        _, optimized = compile_for_execution(formula, structure, schema, slack=0)
    except Exception as exc:
        return False, f"algebra compile failed: {exc}"
    return plan_supported(optimized)


def prewarm(
    formula: Formula, structure: StringStructure, schema: Schema, slack: int = 0
) -> bool:
    """Best-effort closure compilation for prepared queries.

    Called by the service on a prepared-query plan-cache miss so that the
    *first* auto plan already sees a warm closure — this is what amortizes
    ``CODEGEN_SETUP_COST`` and lets repeated queries flip the argmin.
    """
    from repro.engine.planner import algebra_eligible

    try:
        formula = canonicalize(formula)
        if not algebra_eligible(formula, structure):
            return False
        pipeline, _ = get_pipeline(formula, structure, schema, slack)
    except Exception:
        return False
    if pipeline is None:
        return False
    METRICS.inc("codegen.prewarms")
    return True
