"""RANF translation: arbitrary calculus queries as executable plan *pairs*.

Raszyk et al. ("Efficient Evaluation of Arbitrary Relational Calculus
Queries", arXiv 2210.09964) evaluate an arbitrary — not syntactically
range-restricted — relational calculus query by translating it into a
pair of relational-algebra-normal-form queries: one computing the finite
output, one characterizing "the result is infinite".  This module is
that idea specialized to the paper's string calculi: it widens the
algebra/codegen engines from :func:`~repro.algebra.compile.compile_query`'s
ADOM-only collapsed fragment to every formula for which we can certify a
data-independent output bound, including the restricted PREFIX/LENGTH
quantifiers of RC(S_left)/RC(S_len) **without** collapsing them away
first.

:func:`translation_verdict` classifies a formula (structurally, memoized
per canonical fingerprint — the planner's eligibility gate):

``collapsed``
    the old fragment (ADOM-only quantifiers, collapsed form, anchored
    free variables).  The legacy :func:`~repro.algebra.exec.run_algebra`
    path is byte-for-byte unchanged for it.
``restricted-quantifiers``
    free variables all anchored, but PREFIX/LENGTH (or database-free
    NATURAL) quantifiers present.  :class:`_RanfCompiler` compiles the
    restricted quantifiers *directly* into algebra — the bounded domain
    a PREFIX/LENGTH quantifier ranges over (prefixes of active-domain
    strings and of the context variables' values, resp. the length ball;
    see :meth:`repro.eval.direct.DirectEngine._domain`) is expressible
    with ``prefix_i`` / ``add_i^a`` columns and per-row selections.
    The output is still within ``adom^n``, so the "infinite" half of the
    pair is identically empty and is omitted.
``gamma-bounded``
    some free variables unanchored but *range-bounded* per
    :func:`repro.safety.bounded.range_bounded_variables` (e.g.
    ``eq(x, y) & R(y)``, or SIMILAR-TO set ops over finite pattern
    languages).  The pair is real: ``fin`` semi-joins every unanchored
    output column with the slack-0 ``gamma`` bound, and ``inf`` is the
    nullary ``pi_()(T - fin)`` — nonempty exactly when the translated
    query produced a row the certificate cannot bound, in which case the
    caller must treat the natural-semantics result as potentially
    infinite and fall back to the automata engine.  With a correct
    certificate the check is a cheap anti-join over the already-memoized
    ``T``.

Soundness of the quantifier constructions (the engine-agreement
contract): a translated plan evaluates each PREFIX/LENGTH quantifier
over **exactly** the domain the direct and automata engines enumerate —
the adom-derived part is context-free and compiled once, the
context-value part is computed per row from the body's own columns.
Completeness under the ambient ``gamma`` bound needs one extra
accounting step: a quantifier at nesting depth ``d`` can bind values up
to ``slack * d`` symbols longer than the bound's base, so the ambient
bound is built with ``slack * max(1, depth)`` (plus one shell of slack
for the ``gamma-bounded`` branch, so escapes land in the plan instead of
being silently clipped).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.compile import (
    CompiledQuery,
    CompileError,
    _Compiler,
    bound_plan,
    is_collapsed_form,
    is_database_free,
    query_constants,
    strict_adom_plan,
)
from repro.algebra.dialects import FOR_STRUCTURE
from repro.algebra.optimize import optimize_for_execution
from repro.algebra.plan import (
    AddLastOp,
    Difference,
    EpsilonRel,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    Union,
    col,
)
from repro.engine.metrics import METRICS
from repro.errors import SignatureError
from repro.logic.canonical import canonical_fingerprint
from repro.logic.formulas import Atom, Exists, Forall, Formula, Not, QuantKind
from repro.logic.transform import flatten_terms
from repro.safety.bounded import range_bounded_variables


class RanfError(CompileError):
    """The RANF translation cannot handle the formula; ``node`` names the
    subformula the bail-out is attributed to (EXPLAIN surfaces it)."""

    def __init__(self, message: str, node: str | None = None):
        super().__init__(message)
        self.node = node


# ------------------------------------------------------------------ verdicts


@dataclass(frozen=True)
class RanfVerdict:
    """The structural classification of one formula over one structure."""

    ok: bool
    branch: str  # "collapsed" | "restricted-quantifiers" | "gamma-bounded"
    reason: str
    bail_node: Optional[str]
    anchored: frozenset[str]
    bounded: frozenset[str]
    extra_constants: frozenset[str]
    rq_depth: int


_VERDICTS: dict[tuple, RanfVerdict] = {}
_VERDICTS_CAP = 512


def _restricted_depth(f: Formula) -> int:
    """Max nesting depth of PREFIX/LENGTH quantifiers (the slack
    compounding factor of the ambient bound)."""
    here = 0
    if isinstance(f, (Exists, Forall)) and f.kind in (
        QuantKind.PREFIX,
        QuantKind.LENGTH,
    ):
        here = 1
    return here + max(
        (_restricted_depth(c) for c in f.children()), default=0
    )


def _compute_verdict(formula: Formula, structure) -> RanfVerdict:
    from repro.engine.planner import anchored_free_variables

    def bail(reason: str, node: Formula | None = None) -> RanfVerdict:
        return RanfVerdict(
            ok=False,
            branch="",
            reason=reason,
            bail_node=str(node) if node is not None else None,
            anchored=frozenset(),
            bounded=frozenset(),
            extra_constants=frozenset(),
            rq_depth=0,
        )

    try:
        structure.check_formula(formula)
    except SignatureError as exc:
        return bail(f"outside the {structure.name} signature: {exc}")
    flat = flatten_terms(formula)
    kinds: set[QuantKind] = set()
    for sub in flat.walk():
        if not isinstance(sub, (Exists, Forall)):
            continue
        kinds.add(sub.kind)
        if sub.kind is QuantKind.NATURAL and not is_database_free(sub.body):
            return bail(
                "NATURAL quantifier over a database-dependent scope "
                "(collapse() it to a restricted kind first)",
                sub,
            )
        if sub.kind is QuantKind.LENGTH and "len_le" not in structure.predicates:
            return bail(
                f"LENGTH quantifier needs the S_len signature, not {structure.name}",
                sub,
            )
    free = flat.free_variables()
    anchored = anchored_free_variables(flat)
    rq_depth = _restricted_depth(flat)
    if free <= anchored:
        if kinds <= {QuantKind.ADOM} and is_collapsed_form(flat):
            branch = "collapsed"
        else:
            branch = "restricted-quantifiers"
        return RanfVerdict(
            ok=True,
            branch=branch,
            reason="",
            bail_node=None,
            anchored=anchored,
            bounded=frozenset(),
            extra_constants=frozenset(),
            rq_depth=rq_depth,
        )
    report = range_bounded_variables(flat, structure)
    loose = free - anchored - report.bounded
    if loose:
        return bail(
            "free variable(s) neither anchored nor range-bounded: "
            + ", ".join(sorted(loose)),
            flat,
        )
    return RanfVerdict(
        ok=True,
        branch="gamma-bounded",
        reason="",
        bail_node=None,
        anchored=anchored,
        bounded=report.bounded,
        extra_constants=report.extra_constants,
        rq_depth=rq_depth,
    )


def translation_verdict(formula: Formula, structure) -> RanfVerdict:
    """Classify ``formula`` for the RANF translation (memoized).

    Both positive and negative verdicts are cached per canonical
    fingerprint — re-planning an ineligible query costs a dict lookup,
    counted under ``planner.eligibility_memo_hits``.
    """
    key = (
        canonical_fingerprint(formula),
        structure.name,
        structure.alphabet.symbols,
    )
    hit = _VERDICTS.get(key)
    if hit is not None:
        METRICS.inc("planner.eligibility_memo_hits")
        return hit
    verdict = _compute_verdict(formula, structure)
    METRICS.inc("planner.ranf.verdicts")
    if not verdict.ok:
        METRICS.inc("planner.ranf.bailouts")
    if len(_VERDICTS) >= _VERDICTS_CAP:
        _VERDICTS.pop(next(iter(_VERDICTS)))
    _VERDICTS[key] = verdict
    return verdict


# ------------------------------------------------------------------ compiler


class _RanfCompiler(_Compiler):
    """Extends the Theorem-4 compiler with PREFIX/LENGTH quantifiers.

    Contract (shared with the parent): ``translate`` returns
    ``(plan, vars)`` with ``vars`` the sorted free variables, sound and
    complete for assignments within the ambient bound's exact region.
    """

    def translate(self, f: Formula):
        if isinstance(f, Exists) and f.kind in (QuantKind.PREFIX, QuantKind.LENGTH):
            return self._restricted_exists(f)
        if isinstance(f, Forall) and f.kind in (QuantKind.PREFIX, QuantKind.LENGTH):
            return self.translate(Not(Exists(f.var, Not(f.body), f.kind)))
        return super().translate(f)

    # The PREFIX/LENGTH domains always contain epsilon, so a vacuous
    # restricted quantifier (bound variable unused) changes nothing.

    def _restricted_exists(self, f: Exists):
        body_plan, body_vars = self.translate(f.body)
        if f.var not in body_vars:
            return body_plan, body_vars
        if f.kind is QuantKind.PREFIX:
            matched = self._prefix_membership(body_plan, body_vars, f.var)
        else:
            matched = self._length_membership(body_plan, body_vars, f.var)
        idx = body_vars.index(f.var)
        out_vars = tuple(v for v in body_vars if v != f.var)
        indices = tuple(i for i in range(len(body_vars)) if i != idx)
        return Project(matched, indices), out_vars

    # -- PREFIX: y in prefix-closure(adom) extended <= slack, or in the
    #    prefix-closure of some context variable's value, extended <= slack.

    def _prefix_adom_domain(self) -> Plan:
        """Unary plan of the context-free (adom) part of a PREFIX domain."""
        base = Union(strict_adom_plan(self.schema), EpsilonRel())
        plan: Plan = Project(PrefixOp(base, 0), (1,))
        for _ in range(self.slack):
            round_plan = plan
            for a in self.structure.alphabet.symbols:
                round_plan = Union(round_plan, Project(AddLastOp(plan, 0, a), (1,)))
            plan = round_plan
        return plan

    def _prefix_membership(self, body_plan: Plan, body_vars, var: str) -> Plan:
        idx = body_vars.index(var)
        m = len(body_vars)
        # Part A: the bound value is in the adom-derived domain part.
        matched, _ = self._join(
            body_plan, body_vars, self._prefix_adom_domain(), (var,)
        )
        # Part B, per context variable z: the bound value is a prefix of
        # z's value in the *same row*, extended by <= slack symbols.
        for j in range(m):
            if j == idx:
                continue
            grown: Plan = PrefixOp(body_plan, j)  # candidate column at m
            for _ in range(self.slack):
                round_plan = grown
                for a in self.structure.alphabet.symbols:
                    ext = Project(
                        AddLastOp(grown, m, a), tuple(range(m)) + (m + 1,)
                    )
                    round_plan = Union(round_plan, ext)
                grown = round_plan
            hit = Select(grown, Atom("eq", (col(idx), col(m))))
            matched = Union(matched, Project(hit, tuple(range(m))))
        return matched

    # -- LENGTH: |y| <= max(longest adom string, longest context value)
    #    + slack.  Expressed as len_le against per-source probe strings
    #    padded with `slack` extra symbols — no `down_i` (the exponential
    #    operator) anywhere, so the plans stay codegen-fuseable.

    def _length_membership(self, body_plan: Plan, body_vars, var: str) -> Plan:
        idx = body_vars.index(var)
        m = len(body_vars)
        symbols = self.structure.alphabet.symbols
        pad = symbols[0] if symbols else None
        # Part A: |y| <= |w| + slack for some w in adom u {eps}.
        probe: Plan = Union(strict_adom_plan(self.schema), EpsilonRel())
        for _ in range(self.slack):
            if pad is not None:
                probe = Project(AddLastOp(probe, 0, pad), (1,))
        part = Select(
            Product(body_plan, probe), Atom("len_le", (col(idx), col(m)))
        )
        matched: Plan = Project(part, tuple(range(m)))
        # Part B, per context variable z: |y| <= |z's value| + slack.
        for j in range(m):
            if j == idx:
                continue
            grown: Plan = body_plan
            cur = j
            arity = m
            for _ in range(self.slack):
                if pad is None:
                    break
                grown = AddLastOp(grown, cur, pad)
                cur = arity
                arity += 1
            hit = Select(grown, Atom("len_le", (col(idx), col(cur))))
            matched = Union(matched, Project(hit, tuple(range(m))))
        return matched


# ---------------------------------------------------------------- the pair


@dataclass(frozen=True)
class RanfPair:
    """The translated pair: ``fin`` computes the finite output, ``inf``
    (when present) is a nullary plan that is nonempty exactly when the
    translation's bound certificate failed at runtime and the natural
    result must be treated as potentially infinite."""

    branch: str
    compiled: CompiledQuery
    fin_optimized: Plan
    inf_plan: Optional[Plan]
    inf_optimized: Optional[Plan]

    @property
    def columns(self) -> tuple[str, ...]:
        return self.compiled.columns


_TRANSLATIONS: dict[tuple, RanfPair] = {}
_TRANSLATIONS_CAP = 64


def has_translation(formula, structure, schema, slack: int) -> bool:
    """True when the pair for this key is already cached (the planner's
    amortized cost model checks this without forcing a translation)."""
    return _translation_key(formula, structure, schema, slack) in _TRANSLATIONS


def _translation_key(formula, structure, schema, slack: int) -> tuple:
    return (
        canonical_fingerprint(formula),
        structure.name,
        structure.alphabet.symbols,
        slack,
        schema,
    )


def translate_ranf(formula: Formula, structure, schema, slack: int = 1) -> RanfPair:
    """Translate ``formula`` into its RANF pair (cached per fingerprint).

    Raises :class:`RanfError` when :func:`translation_verdict` bails.
    """
    key = _translation_key(formula, structure, schema, slack)
    hit = _TRANSLATIONS.get(key)
    if hit is not None:
        METRICS.inc("algebra.ranf.translation_cache_hits")
        return hit
    verdict = translation_verdict(formula, structure)
    if not verdict.ok:
        raise RanfError(
            f"RANF translation bailed: {verdict.reason}", node=verdict.bail_node
        )
    METRICS.inc("algebra.ranf.translations")
    METRICS.inc(f"algebra.ranf.branch.{verdict.branch}")
    flat = flatten_terms(formula)
    constants = query_constants(flat) | verdict.extra_constants
    shell = 1 if verdict.branch == "gamma-bounded" else 0
    bound_slack = slack * max(1, verdict.rq_depth) + shell
    bound = bound_plan(structure, schema, bound_slack, constants)
    compiler = _RanfCompiler(structure, schema, slack, bound)
    plan, variables = compiler.translate(flat)
    target = tuple(sorted(formula.free_variables()))
    plan = compiler._pad_to(plan, variables, target)

    inf_plan: Optional[Plan] = None
    if verdict.branch == "gamma-bounded":
        gamma0 = bound_plan(structure, schema, 0, constants)
        fin = plan
        n = len(target)
        for i, v in enumerate(target):
            if v in verdict.anchored:
                continue
            filtered = Select(
                Product(fin, gamma0), Atom("eq", (col(i), col(n)))
            )
            fin = Project(filtered, tuple(range(n)))
        inf_plan = Project(Difference(plan, fin), ())
        plan = fin

    dialect = FOR_STRUCTURE[structure.name](structure.alphabet)
    dialect.validate(plan)
    if inf_plan is not None:
        dialect.validate(inf_plan)
    pair = RanfPair(
        branch=verdict.branch,
        compiled=CompiledQuery(plan, target, dialect),
        fin_optimized=optimize_for_execution(plan),
        inf_plan=inf_plan,
        inf_optimized=(
            optimize_for_execution(inf_plan) if inf_plan is not None else None
        ),
    )
    if len(_TRANSLATIONS) >= _TRANSLATIONS_CAP:
        _TRANSLATIONS.pop(next(iter(_TRANSLATIONS)))
    _TRANSLATIONS[key] = pair
    return pair


# ---------------------------------------------------------------- execution


@dataclass(frozen=True)
class RanfRun:
    """One evaluation of a translated pair.  ``infinite`` means the
    ``inf`` half produced a row — the finite half is not the answer and
    the caller must fall back to an engine with natural semantics."""

    columns: tuple[str, ...]
    rows: Optional[frozenset]
    stats: Optional[object]
    inf_stats: Optional[object]
    infinite: bool
    branch: str


def run_ranf(
    formula: Formula,
    structure,
    database,
    slack: int = 1,
    recorder=None,
) -> RanfRun:
    """Evaluate the RANF pair of ``formula`` with the algebra executor.

    One executor runs both halves, so the shared translated core ``T``
    is computed once (the executor memoizes subplans by value).  The
    ``inf`` half runs first: a nonempty result aborts before the finite
    half is materialized.
    """
    from repro.algebra.exec import AlgebraExecutor

    pair = translate_ranf(formula, structure, database.schema, slack=slack)
    executor = AlgebraExecutor(structure, database, recorder=recorder)
    inf_stats = None
    if pair.inf_optimized is not None:
        METRICS.inc("algebra.ranf.inf_checks")
        inf_rows, inf_stats = executor.run(pair.inf_optimized)
        if inf_rows:
            METRICS.inc("algebra.ranf.infinite_bailouts")
            return RanfRun(
                columns=pair.columns,
                rows=None,
                stats=None,
                inf_stats=inf_stats,
                infinite=True,
                branch=pair.branch,
            )
    rows, stats = executor.run(pair.fin_optimized)
    return RanfRun(
        columns=pair.columns,
        rows=rows,
        stats=stats,
        inf_stats=inf_stats,
        infinite=False,
        branch=pair.branch,
    )
