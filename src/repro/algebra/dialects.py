"""The four algebras RA(S), RA(S_len), RA(S_left), RA(S_reg) as dialects.

A dialect pairs the structure whose formulas may appear in ``sigma_alpha``
with the set of string operators allowed (paper Sections 6.2 and 7.1):

============  ==========================================================
RA(S)         sigma over FO(S); ``R_eps``, ``prefix_i``, ``add_i^a``
RA(S_len)     sigma over FO(S_len); + ``down_i``
RA(S_left)    sigma over FO(S_left); + ``add_i^{l,a}``, ``trim_i^{l,a}``
RA(S_reg)     sigma over FO(S_reg); same operators as RA(S)
============  ==========================================================

Theorems 4 and 8: each dialect expresses exactly the safe queries of the
corresponding calculus.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    InsertAtOp,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
)
from repro.errors import SignatureError
from repro.strings.alphabet import Alphabet
from repro.structures import S, S_insert, S_left, S_len, S_reg
from repro.structures.base import StringStructure

_CORE = (BaseRel, EpsilonRel, Select, Project, Product, Union, Difference, PrefixOp, AddLastOp)


@dataclass(frozen=True)
class AlgebraDialect:
    """One of the paper's relational algebras."""

    name: str
    structure: StringStructure
    allowed_nodes: tuple[type, ...]

    def validate(self, plan: Plan) -> Plan:
        """Check every node and every selection condition; return the plan."""
        for node in plan.walk():
            if not isinstance(node, self.allowed_nodes):
                raise SignatureError(
                    f"operator {type(node).__name__} is not part of {self.name}"
                )
            if isinstance(node, Select):
                self.structure.check_formula(node.condition)
        return plan

    def evaluate(self, plan: Plan, db) -> frozenset:
        """Validate then evaluate a plan."""
        self.validate(plan)
        return plan.evaluate(db, self.structure)


def RA_S(alphabet: Alphabet) -> AlgebraDialect:
    """RA(S): captures the safe queries of RC(S) (Theorem 4)."""
    return AlgebraDialect("RA(S)", S(alphabet), _CORE)


def RA_S_len(alphabet: Alphabet) -> AlgebraDialect:
    """RA(S_len): RA(S) plus ``down_i`` (Theorem 4).

    The paper's operator set is exactly ``R_eps, sigma, prefix_i, add_i,
    down_i`` — add/trim-first are *derivable* (via ``down_i`` and an
    ``el``-selection), so they are deliberately not primitive here.
    """
    return AlgebraDialect("RA(S_len)", S_len(alphabet), _CORE + (DownOp,))


def RA_S_left(alphabet: Alphabet) -> AlgebraDialect:
    """RA(S_left): RA(S) plus add/trim-first (Theorem 8)."""
    return AlgebraDialect("RA(S_left)", S_left(alphabet), _CORE + (AddFirstOp, TrimFirstOp))


def RA_S_reg(alphabet: Alphabet) -> AlgebraDialect:
    """RA(S_reg): RA(S) operators with S_reg selection conditions (Theorem 8)."""
    return AlgebraDialect("RA(S_reg)", S_reg(alphabet), _CORE)


def RA_S_insert(alphabet: Alphabet) -> AlgebraDialect:
    """RA(S_insert): the Section 8 extension's algebra (not in the paper).

    RA(S_left) plus the positional-insertion operator ``insert_{i,j}^a``;
    validated against the calculus empirically (the safe RC(S_insert) =
    RA(S_insert) analogue of Theorem 8 is conjectural).
    """
    return AlgebraDialect(
        "RA(S_insert)",
        S_insert(alphabet),
        _CORE + (AddFirstOp, TrimFirstOp, InsertAtOp),
    )


DIALECTS = {
    "RA(S)": RA_S,
    "RA(S_len)": RA_S_len,
    "RA(S_left)": RA_S_left,
    "RA(S_reg)": RA_S_reg,
    "RA(S_insert)": RA_S_insert,
}

#: Structure name -> dialect factory (used by the compiler).
FOR_STRUCTURE = {
    "S": RA_S,
    "S_len": RA_S_len,
    "S_left": RA_S_left,
    "S_reg": RA_S_reg,
    "S_insert": RA_S_insert,
}
