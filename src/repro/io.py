"""Serialization and visualization helpers.

* JSON round-trips for databases (the CLI's on-disk format);
* Graphviz DOT export for DFAs and relation automata (development aid:
  ``dot -Tpng out.dot`` renders the machine).
"""

from __future__ import annotations

import json
from typing import Union

from repro.automata.dfa import DFA
from repro.automatic.convolution import PAD
from repro.automatic.relation import RelationAutomaton
from repro.database.instance import Database
from repro.strings.alphabet import Alphabet


def database_to_json(db: Database) -> str:
    """Serialize a database to the CLI's JSON format (stable ordering)."""
    spec = {
        "alphabet": "".join(db.alphabet.symbols),
        "relations": {
            name: sorted([list(row) for row in db.relation(name)])
            for name in db.relation_names
        },
    }
    return json.dumps(spec, indent=2, sort_keys=True)


def database_from_json(text: str) -> Database:
    """Parse the CLI's JSON database format."""
    spec = json.loads(text)
    alphabet = Alphabet(spec.get("alphabet", "01"))
    relations = {
        name: [tuple(row) for row in rows]
        for name, rows in spec.get("relations", {}).items()
    }
    return Database(alphabet, relations)


def _symbol_label(symbol: object) -> str:
    if isinstance(symbol, tuple):  # convolution column
        return "(" + ",".join("#" if x is PAD else str(x) for x in symbol) + ")"
    return str(symbol)


def dfa_to_dot(dfa: DFA, name: str = "dfa") -> str:
    """Graphviz DOT text for a DFA (parallel edges merged per state pair)."""
    canonical = dfa.canonical()
    lines = [f"digraph {name} {{", "  rankdir=LR;", '  __start [shape=point];']
    for q in sorted(canonical.states):
        shape = "doublecircle" if q in canonical.accepting else "circle"
        lines.append(f'  q{q} [shape={shape}, label="{q}"];')
    lines.append(f"  __start -> q{canonical.start};")
    merged: dict[tuple, list[str]] = {}
    for q, delta in canonical.transitions.items():
        for symbol, target in delta.items():
            merged.setdefault((q, target), []).append(_symbol_label(symbol))
    for (q, target), labels in sorted(merged.items()):
        label = ", ".join(sorted(labels))
        if len(label) > 40:
            label = label[:37] + "..."
        lines.append(f'  q{q} -> q{target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def relation_to_dot(relation: RelationAutomaton, name: str = "relation") -> str:
    """DOT text for a relation automaton's convolution DFA."""
    return dfa_to_dot(relation.dfa, name)


def to_dot(obj: Union[DFA, RelationAutomaton], name: str = "machine") -> str:
    """Polymorphic DOT export."""
    if isinstance(obj, RelationAutomaton):
        return relation_to_dot(obj, name)
    return dfa_to_dot(obj, name)
