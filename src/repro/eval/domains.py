"""Quantifier-domain machinery for the restricted quantifier kinds.

The paper's collapse theorems replace natural quantification over all of
``Sigma*`` by quantification over database-bounded domains:

* PREFIX (Proposition 2 / Theorem 1, for S, S_left, S_reg): strings within
  a bounded right-extension of the prefix closure of the active domain and
  the current free values — concretely ``{ p . sigma | p in prefix(adom u
  values), |sigma| <= slack }``;
* LENGTH (Proposition 4 / Theorem 2, for S_len): strings of length at most
  ``max length of adom u values, plus slack``.

Both engines share these definitions, as explicit enumerations (direct
engine) and as automata (automata engine).  The ``slack`` is the bounded
headroom the paper's proofs call ``k`` (Lemmas 1 and 2); see
:func:`repro.eval.collapse.default_slack` for how a formula's slack is
chosen.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.automata.dfa import DFA
from repro.automata.nfa import EPSILON, NFA
from repro.automatic.convolution import PAD, columns
from repro.automatic.relation import RelationAutomaton
from repro.strings import prefix_closure
from repro.strings.alphabet import Alphabet

# --------------------------------------------------------------- enumerations


def prefix_domain(
    alphabet: Alphabet, base: Iterable[str], slack: int
) -> Iterator[str]:
    """Enumerate the PREFIX domain: prefix-closure of ``base`` extended by
    at most ``slack`` symbols on the right.  No duplicates."""
    closed = sorted(prefix_closure(base), key=lambda s: (len(s), s))
    if not closed:
        closed = [""]
    seen: set[str] = set()
    for p in closed:
        for sigma in alphabet.strings_up_to(slack):
            candidate = p + sigma
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def length_domain(
    alphabet: Alphabet, base: Iterable[str], slack: int
) -> Iterator[str]:
    """Enumerate the LENGTH domain: all strings of length at most
    ``max(|b|) + slack`` — exponential, exactly as Theorem 2 prices it."""
    max_len = max((len(b) for b in base), default=0)
    yield from alphabet.strings_up_to(max_len + slack)


# ------------------------------------------------------------------- automata


def extension_set_relation(
    alphabet: Alphabet, base: Iterable[str], slack: int
) -> RelationAutomaton:
    """Unary relation ``{ p . sigma | p in prefix(base), |sigma| <= slack }``.

    Built as the prefix-closure trie with a ``slack``-step free tail.
    """
    base = list(base)
    # Trie of the base strings; every trie state is accepting (prefix
    # closure).
    root = 0
    nxt = 1
    trie: dict[int, dict[str, int]] = {}
    for s in base:
        q = root
        for ch in s:
            delta = trie.setdefault(q, {})
            if ch not in delta:
                delta[ch] = nxt
                nxt += 1
            q = delta[ch]
    trie_states = list(range(nxt))
    # Tail: a chain of `slack` states reading any symbol.
    tail_states = [("tail", i) for i in range(slack + 1)]
    transitions: dict[object, dict[object, set[object]]] = {}
    for q in trie_states:
        delta: dict[object, set[object]] = {}
        for ch, t in trie.get(q, {}).items():
            delta.setdefault((ch,), set()).add(t)
        if slack > 0:
            for ch in alphabet.symbols:
                delta.setdefault((ch,), set()).add(("tail", 1))
        if delta:
            transitions[q] = delta
    for i in range(1, slack):
        transitions[("tail", i)] = {
            (ch,): {("tail", i + 1)} for ch in alphabet.symbols
        }
    nfa = NFA(
        columns(alphabet, 1),
        trie_states + tail_states,
        [root],
        trie_states + tail_states[1:],
        transitions,
    )
    from repro.automata import kernel

    return RelationAutomaton(alphabet, 1, kernel.determinize_minimized(nfa))


def near_prefix_relation(alphabet: Alphabet, slack: int) -> RelationAutomaton:
    """Binary relation ``{(x, y) | |x| - |x ^ y| <= slack}``.

    With ``slack = 0`` this is exactly the prefix order; larger slack lets
    ``x`` stick out by a bounded amount past its common prefix with ``y``.
    """
    cols = columns(alphabet, 2)
    match = "match"  # still inside the common prefix of x and y
    done = "done"  # x has ended; y may continue freely
    counts = list(range(1, slack + 1))  # symbols of x past the divergence
    states: list[object] = [match, done] + counts
    transitions: dict[object, dict[object, object]] = {q: {} for q in states}
    for c in cols:
        x, y = c
        if x is PAD:
            # x has ended; y continues freely. Any live state stays fine.
            transitions[match][c] = done
            transitions[done][c] = done
            for i in counts:
                transitions[i][c] = done
            continue
        # x is a symbol.
        if x == y:
            transitions[match][c] = match
        elif slack >= 1:
            # Divergence (y differs here or has ended): overhang starts.
            transitions[match][c] = 1
        # Once past the divergence every x symbol counts, whatever y does.
        for i in counts[:-1]:
            transitions[i][c] = i + 1
    accepting = [match, done] + counts
    dfa = DFA(cols, states, match, accepting, transitions)
    return RelationAutomaton(alphabet, 2, dfa)


def length_bound_set_relation(alphabet: Alphabet, max_len: int) -> RelationAutomaton:
    """Unary relation of all strings of length at most ``max_len``."""
    cols = columns(alphabet, 1)
    transitions = {
        i: {(ch,): i + 1 for ch in alphabet.symbols} for i in range(max_len)
    }
    dfa = DFA(cols, range(max_len + 1), 0, range(max_len + 1), transitions)
    return RelationAutomaton(alphabet, 1, dfa)


def length_le_plus_relation(alphabet: Alphabet, slack: int) -> RelationAutomaton:
    """Binary relation ``{(x, y) | |x| <= |y| + slack}``."""
    cols = columns(alphabet, 2)
    # State: how far x has run beyond y (0 while y alive), or "ok" when y
    # outlives x.
    ok = "ok"
    states: list[object] = [ok] + list(range(slack + 1))
    transitions: dict[object, dict[object, object]] = {q: {} for q in states}
    for c in cols:
        x, y = c
        if x is not PAD and y is not PAD:
            transitions[0][c] = 0
        if x is PAD and y is not PAD:
            transitions[0][c] = ok
            transitions[ok][c] = ok
        if x is not PAD and y is PAD:
            for i in range(slack):
                transitions[i][c] = i + 1
    dfa = DFA(cols, states, 0, states, transitions)
    return RelationAutomaton(alphabet, 2, dfa)
