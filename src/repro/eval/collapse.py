"""Executable quantifier collapse (Theorem 1, Proposition 4, Theorem 6).

The paper proves that natural quantification adds nothing over the tame
structures: every RC(S)/RC(S_left)/RC(S_reg) formula is equivalent to one
with prefix-restricted quantifiers (Propositions 2, Theorems 1/6), and
every RC(S_len) formula to one with length-restricted quantifiers
(Proposition 4).

:func:`collapse` performs the corresponding rewrite: it retargets each
NATURAL quantifier at the structure's restricted kind.  The *slack* — how
far a witness may stick out beyond the database-derived domain, the ``k``
of Lemmas 1-2 — is chosen by :func:`default_slack` from the quantifier
rank: a k-round Ehrenfeucht-Fraisse game over these structures cannot
distinguish positions deeper than ``2^k`` into fresh territory, so
witnesses can always be retracted to within ``2^k`` of the known region.

The library treats the collapse as a *verified rewrite*: the test suite
checks, for a corpus of formulas and databases, that the collapsed formula
evaluated by either engine agrees with the natural semantics computed by
the automata engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.formulas import Formula, QuantKind
from repro.logic.transform import restrict_quantifiers
from repro.structures.base import StringStructure

#: Cap on the automatically derived slack; queries of quantifier rank
#: above this use the cap (override explicitly if you really need more).
MAX_DEFAULT_SLACK = 16


def default_slack(formula: Formula) -> int:
    """Slack derived from the quantifier rank (``2^qr``, capped)."""
    rank = formula.quantifier_rank()
    return min(2 ** max(rank, 1), MAX_DEFAULT_SLACK)


@dataclass(frozen=True)
class CollapsedQuery:
    """A collapsed formula plus the slack its domains must use."""

    formula: Formula
    slack: int
    kind: QuantKind


def collapse(
    formula: Formula,
    structure: StringStructure,
    slack: int | None = None,
) -> CollapsedQuery:
    """Rewrite NATURAL quantifiers to the structure's restricted kind.

    Returns the rewritten formula together with the slack that the
    evaluation engines must use for its restricted domains.
    """
    kind = structure.restricted_kind
    if slack is None:
        slack = default_slack(formula)
    rewritten = restrict_quantifiers(formula, kind)
    return CollapsedQuery(rewritten, slack, kind)
