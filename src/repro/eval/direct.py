"""The direct evaluation engine: restricted-quantifier semantics.

Evaluates a formula by structural recursion with explicit enumeration of
the restricted quantifier domains (ADOM / PREFIX / LENGTH).  This is the
evaluator whose data complexity matches the paper's claims:

* for a fixed collapsed RC(S) / RC(S_left) / RC(S_reg) query the PREFIX
  domain has polynomially many strings, so evaluation is polynomial in the
  database (Corollaries 2 and 7's operational content);
* for RC(S_len) the LENGTH domain has exponentially many strings in the
  longest database string — and Theorem 2 / Proposition 5 say this cannot
  be avoided in general.

NATURAL quantifiers are rejected: collapse the formula first
(:func:`repro.eval.collapse.collapse`) or use the automata engine, which
handles natural quantification exactly.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

from repro.database.instance import Database
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.errors import EvaluationError
from repro.eval.domains import prefix_domain
from repro.logic.transform import to_nnf
from repro.eval.result import QueryResult
from repro.automatic.relation import RelationAutomaton
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.structures.base import StringStructure


def _anchored_variables(nnf: Formula) -> frozenset[str]:
    """Variables guaranteed to take active-domain values (polarity-aware).

    The classic range-restriction analysis on an NNF formula: a variable is
    anchored by a positive relation atom; conjunction anchors the union,
    disjunction only the intersection; negated atoms anchor nothing.
    """
    if isinstance(nnf, RelAtom):
        return nnf.free_variables()
    if isinstance(nnf, And):
        out: frozenset[str] = frozenset()
        for p in nnf.parts:
            out |= _anchored_variables(p)
        return out
    if isinstance(nnf, Or):
        parts = [_anchored_variables(p) for p in nnf.parts]
        out = parts[0]
        for p in parts[1:]:
            out &= p
        return out
    if isinstance(nnf, (Exists, Forall)):
        return _anchored_variables(nnf.body) - {nnf.var}
    return frozenset()


class DirectEngine:
    """Enumerative evaluator for restricted-quantifier formulas.

    Shares its domain definitions (and the ``slack`` parameter) with the
    automata engine, so the two agree exactly on restricted formulas; they
    are cross-checked in the test suite.
    """

    def __init__(self, structure: StringStructure, database: Database, slack: int = 0):
        if structure.alphabet != database.alphabet:
            raise EvaluationError("structure and database alphabets differ")
        self.structure = structure
        self.database = database
        self.slack = slack
        # Hot-path caches: quantifier domains are enumerated inside nested
        # loops, so the adom-derived parts are computed once.
        self._adom_sorted = sorted(database.adom)
        self._adom_prefix_part: list[str] | None = None
        self._length_lists: dict[int, list[str]] = {}
        self._context_cache: dict[int, tuple[frozenset[str], object]] = {}
        # Strided deadline checks: per-candidate work is tiny, so checking
        # the clock on every enumeration step would dominate it.
        self._tick = 0

    # -------------------------------------------------------------- public

    def holds(
        self, formula: Formula, assignment: Optional[dict[str, str]] = None
    ) -> bool:
        """Truth of ``formula`` under ``assignment`` (must cover free vars)."""
        assignment = dict(assignment or {})
        missing = formula.free_variables() - set(assignment)
        if missing:
            raise EvaluationError(f"unbound free variables {sorted(missing)}")
        return self._eval(formula, assignment)

    def decide(self, sentence: Formula, check_signature: bool = True) -> bool:
        """Truth value of a sentence."""
        if check_signature:
            self.structure.check_formula(sentence)
        if sentence.free_variables():
            raise EvaluationError("not a sentence")
        return self._eval(sentence, {})

    def run(
        self,
        formula: Formula,
        check_signature: bool = True,
        output_kind: Optional[QuantKind] = None,
    ) -> QueryResult:
        """Evaluate an open formula; output candidates range over the
        structure's restricted domain (PREFIX or LENGTH, per the collapse
        theorems), so the result is finite by construction.

        For queries that are safe on the database this computes exactly
        ``phi(D)`` — the range-restriction theorems (Theorem 3/7) guarantee
        safe outputs stay within the restricted domain; unsafe queries get
        silently truncated to the domain, so callers who need to *detect*
        unsafety should use the automata engine or :mod:`repro.safety`.
        """
        if check_signature:
            self.structure.check_formula(formula)
        free = tuple(sorted(formula.free_variables()))
        kinds = self._output_kinds(formula, free, output_kind)
        tuples = set()
        candidates = 0
        for assignment in self._assignments(free, kinds):
            candidates += 1
            self._checkpoint()
            if self._eval(formula, dict(assignment)):
                tuples.add(tuple(assignment[v] for v in free))
        METRICS.inc("direct.candidates", candidates)
        METRICS.inc("direct.output_tuples", len(tuples))
        relation = RelationAutomaton.from_tuples(
            self.structure.alphabet, len(free), tuples
        )
        return QueryResult(free, relation)

    def _output_kinds(
        self,
        formula: Formula,
        free: tuple[str, ...],
        output_kind: Optional[QuantKind],
    ) -> dict[str, QuantKind]:
        """Per-variable candidate domains for the output columns.

        Variables *anchored* in a database relation atom only ever take
        active-domain values, so their candidates come from adom; the rest
        use the structure's restricted domain (PREFIX/LENGTH).  An explicit
        ``output_kind`` overrides the choice for every column.
        """
        if output_kind is not None:
            return {v: output_kind for v in free}
        anchored = _anchored_variables(to_nnf(formula))
        default = self.structure.restricted_kind
        return {
            v: (QuantKind.ADOM if v in anchored else default) for v in free
        }

    def _assignments(
        self, free: tuple[str, ...], kinds: dict[str, QuantKind]
    ) -> Iterator[dict[str, str]]:
        if not free:
            yield {}
            return
        domains = {v: list(self._domain(kinds[v], set())) for v in free}

        def rec(i: int, acc: dict[str, str]) -> Iterator[dict[str, str]]:
            if i == len(free):
                yield dict(acc)
                return
            for value in domains[free[i]]:
                acc[free[i]] = value
                yield from rec(i + 1, acc)
            acc.pop(free[i], None)

        yield from rec(0, {})

    # ----------------------------------------------------------- recursion

    def _eval(self, f: Formula, assignment: dict[str, str]) -> bool:
        if isinstance(f, TrueF):
            return True
        if isinstance(f, FalseF):
            return False
        if isinstance(f, Atom):
            return self.structure.eval_atom(f, assignment)
        if isinstance(f, RelAtom):
            values = tuple(t.evaluate(assignment) for t in f.args)
            return values in self.database.relation(f.name)
        if isinstance(f, Not):
            return not self._eval(f.inner, assignment)
        if isinstance(f, And):
            return all(self._eval(p, assignment) for p in f.parts)
        if isinstance(f, Or):
            return any(self._eval(p, assignment) for p in f.parts)
        if isinstance(f, Exists):
            # Save/restore rather than pop: the variable may shadow an
            # outer binding of the same name.
            sentinel = object()
            saved = assignment.get(f.var, sentinel)
            try:
                for value in self._quantifier_domain(f, assignment):
                    self._checkpoint()
                    assignment[f.var] = value
                    if self._eval(f.body, assignment):
                        return True
                return False
            finally:
                if saved is sentinel:
                    assignment.pop(f.var, None)
                else:
                    assignment[f.var] = saved
        if isinstance(f, Forall):
            sentinel = object()
            saved = assignment.get(f.var, sentinel)
            try:
                for value in self._quantifier_domain(f, assignment):
                    self._checkpoint()
                    assignment[f.var] = value
                    if not self._eval(f.body, assignment):
                        return False
                return True
            finally:
                if saved is sentinel:
                    assignment.pop(f.var, None)
                else:
                    assignment[f.var] = saved
        raise EvaluationError(f"cannot evaluate formula node {f!r}")

    def _checkpoint(self) -> None:
        """Cooperative deadline check, every 128th enumeration step."""
        self._tick += 1
        if not self._tick & 127:
            checkpoint()

    # ------------------------------------------------------------- domains

    def _quantifier_domain(
        self, quantifier: Exists | Forall, assignment: dict[str, str]
    ) -> Iterator[str]:
        """Domain of one quantifier: relates the bound variable to the
        active domain and to the values of the variables *free in the
        quantified subformula* (the paper's tuple ``a-bar``) — matching the
        automata engine exactly."""
        cached = self._context_cache.get(id(quantifier))
        if cached is not None and cached[1] is quantifier:
            context = cached[0]
        else:
            context = quantifier.body.free_variables() - {quantifier.var}
            self._context_cache[id(quantifier)] = (context, quantifier)
        values = {assignment[v] for v in context if v in assignment}
        return self._domain(quantifier.kind, values)

    def _domain(self, kind: QuantKind, values: set[str]) -> Iterator[str]:
        """Enumerate a domain given the relevant context values."""
        if kind is QuantKind.NATURAL:
            raise EvaluationError(
                "the direct engine cannot evaluate natural quantifiers; "
                "collapse() the formula or use the automata engine"
            )
        if kind is QuantKind.ADOM:
            yield from self._adom_sorted
            return
        if kind is QuantKind.PREFIX:
            if self._adom_prefix_part is None:
                self._adom_prefix_part = list(
                    prefix_domain(self.structure.alphabet, self._adom_sorted, self.slack)
                )
            yield from self._adom_prefix_part
            extra_values = values - self.database.adom
            if extra_values:
                seen = set(self._adom_prefix_part)
                for s in prefix_domain(self.structure.alphabet, extra_values, self.slack):
                    if s not in seen:
                        yield s
            return
        if kind is QuantKind.LENGTH:
            max_len = max(
                max((len(s) for s in self._adom_sorted), default=0),
                max((len(s) for s in values), default=0),
            )
            cached = self._length_lists.get(max_len)
            if cached is None:
                cached = list(
                    self.structure.alphabet.strings_up_to(max_len + self.slack)
                )
                self._length_lists[max_len] = cached
            yield from cached
            return
        raise EvaluationError(f"unknown quantifier kind {kind}")  # pragma: no cover
