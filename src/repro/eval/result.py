"""Query results: possibly-infinite relations with named columns."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Optional

from repro.automatic.relation import RelationAutomaton
from repro.errors import UnsafeQueryError


class QueryResult:
    """The output of a query: a relation over the free variables.

    Produced by the automata engine, where the output is available as a
    regular set even when infinite; the paper's *state-safety* question
    "is ``phi(D)`` finite?" is :meth:`is_finite`.
    """

    __slots__ = ("variables", "relation")

    def __init__(self, variables: Sequence[str], relation: RelationAutomaton):
        self.variables = tuple(variables)
        self.relation = relation

    def is_finite(self) -> bool:
        """True iff the query is safe on this database (finite output)."""
        return self.relation.is_finite()

    def count(self) -> int:
        """Number of output tuples; raises ``UnsafeQueryError`` if infinite."""
        if not self.is_finite():
            raise UnsafeQueryError("query output is infinite")
        return self.relation.count()

    def tuples(self, limit: Optional[int] = None) -> Iterator[tuple[str, ...]]:
        """Iterate output tuples (must pass ``limit`` if infinite)."""
        if limit is None and not self.is_finite():
            raise UnsafeQueryError(
                "query output is infinite; pass limit= to sample it"
            )
        return self.relation.tuples(limit=limit)

    def as_set(self) -> frozenset[tuple[str, ...]]:
        """All output tuples; raises ``UnsafeQueryError`` if infinite."""
        if not self.is_finite():
            raise UnsafeQueryError("query output is infinite")
        return self.relation.set_of_tuples()

    def contains(self, tup: Sequence[str]) -> bool:
        return self.relation.contains(tup)

    def as_bool(self) -> bool:
        """Truth value (for Boolean queries / sentences)."""
        return self.relation.as_bool()

    def __repr__(self) -> str:
        shape = "finite" if self.is_finite() else "infinite"
        return f"QueryResult(vars={self.variables}, {shape})"
