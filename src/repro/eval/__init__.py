"""Evaluation engines for the string calculi.

Two engines, one semantics:

* :class:`~repro.eval.automata_engine.AutomataEngine` — exact natural
  semantics via convolution automata; always terminates; decides
  state-safety; can return infinite outputs as regular sets.
* :class:`~repro.eval.direct.DirectEngine` — enumerative evaluation of
  restricted-quantifier formulas; polynomial data complexity for collapsed
  RC(S)/RC(S_left)/RC(S_reg) queries, exponential for RC(S_len)'s LENGTH
  domains (as the paper proves is unavoidable).

:func:`~repro.eval.collapse.collapse` bridges the two: it rewrites natural
quantifiers into the structure's restricted kind (Theorem 1 / Proposition 4
/ Theorem 6 made executable).
"""

from repro.eval.automata_engine import AutomataEngine, evaluate
from repro.eval.collapse import CollapsedQuery, collapse, default_slack
from repro.eval.direct import DirectEngine
from repro.eval.domains import length_domain, prefix_domain
from repro.eval.result import QueryResult

__all__ = [
    "AutomataEngine",
    "CollapsedQuery",
    "DirectEngine",
    "QueryResult",
    "collapse",
    "default_slack",
    "evaluate",
    "length_domain",
    "prefix_domain",
]
