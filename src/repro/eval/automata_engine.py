"""The automata evaluation engine: exact semantics for every calculus.

Compiles an RC(SC, M) formula together with a concrete database into a
:class:`~repro.automatic.relation.RelationAutomaton` over the formula's free
variables.  Because the database relations are finite (hence regular) and
every atomic relation of M is synchronized-rational, the compilation is a
straightforward structural recursion:

* atoms -> presentation / database automata (with repeated-variable tracks
  merged),
* boolean connectives -> products and complements,
* quantifiers -> projection, guarded by a domain relation when the
  quantifier kind is restricted (ADOM / PREFIX / LENGTH).

The engine realizes, operationally, several results of the paper at once:

* it terminates on *every* query of RC(S), RC(S_left), RC(S_reg),
  RC(S_len) — natural quantifiers included — giving the reference natural
  semantics;
* ``result.is_finite()`` decides **state-safety** (Proposition 7);
* infinite outputs are still returned, as regular sets.

Its cost can be exponential in the query (complementation after
projection), consistent with the paper's PH upper bound for RC(S_len)
(Theorem 2); the direct engine (:mod:`repro.eval.direct`) is the
polynomial-data-complexity evaluator for collapsed queries.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Sequence
from typing import Optional

from repro.automatic.relation import RelationAutomaton
from repro.database.instance import Database
from repro.engine.cache import AutomatonCache, database_fingerprint, formula_key
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.errors import EvaluationError
from repro.eval.domains import (
    extension_set_relation,
    length_bound_set_relation,
    length_le_plus_relation,
    near_prefix_relation,
)
from repro.eval.result import QueryResult
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import Var
from repro.logic.transform import flatten_terms
from repro.structures.base import StringStructure


class AutomataEngine:
    """Evaluate formulas over one structure and one database.

    Parameters
    ----------
    structure:
        One of the paper's structures (signature is enforced).
    database:
        The finite database instance; its alphabet must match.
    slack:
        Headroom for PREFIX/LENGTH-restricted quantifiers (the ``k`` of the
        paper's Lemmas 1-2).  Shared with the direct engine so both give
        identical semantics to restricted formulas.
    cache:
        Optional :class:`~repro.engine.cache.AutomatonCache`.  When given,
        every subformula compilation is memoized under its structural key
        (database-independent for subformulas with no relation atoms and
        no restricted quantifiers), so repeated
        subformulas — across queries and across sessions of the same
        cache — are compiled once.
    observer:
        Optional trace observer (see :class:`repro.engine.explain.
        TraceObserver`): ``enter(f)`` / ``exit(f, relation, seconds,
        cached)`` around every subformula, for EXPLAIN output.
    """

    def __init__(
        self,
        structure: StringStructure,
        database: Database,
        slack: int = 0,
        cache: Optional[AutomatonCache] = None,
        observer=None,
    ):
        if structure.alphabet != database.alphabet:
            raise EvaluationError("structure and database alphabets differ")
        self.structure = structure
        self.database = database
        self.slack = slack
        self.cache = cache
        self.observer = observer
        self._db_fingerprint: Optional[str] = None
        self._rel_cache: dict[str, RelationAutomaton] = {}
        self._atom_cache: dict[tuple, RelationAutomaton] = {}

    # ------------------------------------------------------------- public

    def run(self, formula: Formula, check_signature: bool = True) -> QueryResult:
        """Compile and return the output relation over sorted free variables."""
        if check_signature:
            self.structure.check_formula(formula)
        flat = flatten_terms(formula)
        free = tuple(sorted(formula.free_variables()))
        relation, variables = self._build(flat)
        relation, variables = self._align(relation, variables, free)
        return QueryResult(variables, relation)

    def decide(self, sentence: Formula, check_signature: bool = True) -> bool:
        """Truth value of a sentence."""
        result = self.run(sentence, check_signature)
        if result.variables:
            raise EvaluationError(f"not a sentence; free variables {result.variables}")
        return result.as_bool()

    # ------------------------------------------------------ recursion core

    def _build(self, f: Formula) -> tuple[RelationAutomaton, tuple[str, ...]]:
        """Cache/trace wrapper around :meth:`_compile` for one subformula."""
        checkpoint()  # cooperative deadline, once per subformula
        key = None
        if self.cache is not None:
            key = self._subformula_key(f)
            hit = self.cache.get(key)
            if hit is None and key[4] is not None:
                # Delta-store versions: a subformula automaton compiled
                # on an ancestor version stays valid when no delta in
                # between touched its relations (or, for restricted
                # quantifiers, the active domain) — the automata layer
                # survives data changes; only changed relations recompile.
                from repro.delta.maintenance import promote_result

                hit = promote_result(
                    self.cache, key, f, metric="delta.automata_promotions"
                )
            if hit is not None:
                if self.observer is not None:
                    self.observer.enter(f)
                    self.observer.exit(f, hit[0], 0.0, cached=True)
                return hit
        if self.observer is not None:
            self.observer.enter(f)
            t0 = time.perf_counter()
            result = self._compile(f)
            self.observer.exit(f, result[0], time.perf_counter() - t0, cached=False)
        else:
            result = self._compile(f)
        if key is not None:
            self.cache.put(key, result)
        return result

    def _subformula_key(self, f: Formula) -> tuple:
        """Structural cache key; database-independent only when the
        subformula neither mentions a relation nor restricts a quantifier
        to the active domain (see :meth:`Formula.database_dependent`)."""
        if f.database_dependent():
            if self._db_fingerprint is None:
                self._db_fingerprint = database_fingerprint(self.database)
            fingerprint = self._db_fingerprint
        else:
            fingerprint = None
        return formula_key(
            f,
            self.structure.name,
            self.structure.alphabet.symbols,
            self.slack,
            fingerprint,
            stage="automata",
        )

    def _compile(self, f: Formula) -> tuple[RelationAutomaton, tuple[str, ...]]:
        """Return (relation, sorted variable order) for a flattened formula."""
        alphabet = self.structure.alphabet
        if isinstance(f, TrueF):
            return RelationAutomaton.true_relation(alphabet), ()
        if isinstance(f, FalseF):
            return RelationAutomaton.false_relation(alphabet), ()
        if isinstance(f, Atom):
            return self._atom(f)
        if isinstance(f, RelAtom):
            return self._rel_atom(f)
        if isinstance(f, Not):
            rel, variables = self._build(f.inner)
            return rel.complement(), variables
        if isinstance(f, (And, Or)):
            # N-ary conjunction/disjunction in one lazy kernel pipeline:
            # folding pairwise would materialize and minimize every
            # intermediate product; the kernel explores the reachable
            # n-ary product once and minimizes once.
            target = tuple(sorted(f.free_variables()))
            parts: list[RelationAutomaton] = []
            for part in f.parts:
                rel, variables = self._build(part)
                rel, _variables = self._align(rel, variables, target)
                parts.append(rel)
            assert parts
            if isinstance(f, And):
                return RelationAutomaton.intersect_all(parts), target
            return RelationAutomaton.union_all(parts), target
        if isinstance(f, Exists):
            return self._exists(f.var, f.body, f.kind)
        if isinstance(f, Forall):
            # forall x: phi == not exists x: not phi (domain-relative when
            # the kind is restricted).
            rel, variables = self._exists(f.var, Not(f.body), f.kind)
            return rel.complement(), variables
        raise EvaluationError(f"cannot evaluate formula node {f!r}")

    def _exists(
        self, var: str, body: Formula, kind: QuantKind
    ) -> tuple[RelationAutomaton, tuple[str, ...]]:
        rel, variables = self._build(body)
        if var not in variables:
            # Vacuous quantification. PREFIX/LENGTH domains always contain
            # epsilon, so exists x: phi == phi; the ADOM domain can be empty.
            if kind is QuantKind.ADOM and not self.database.adom:
                empty = RelationAutomaton.empty(self.structure.alphabet, len(variables))
                return empty, variables
            return rel, variables
        if kind is not QuantKind.NATURAL:
            context = tuple(v for v in variables if v != var)
            dom, dom_vars = self._domain_relation(var, context, kind)
            dom, dom_vars = self._align(dom, dom_vars, variables)
            rel = rel.intersection(dom)
        index = variables.index(var)
        projected = rel.project(index)
        return projected, tuple(v for v in variables if v != var)

    # ------------------------------------------------------------- domains

    def _domain_relation(
        self, var: str, context: Sequence[str], kind: QuantKind
    ) -> tuple[RelationAutomaton, tuple[str, ...]]:
        """Relation over (var, *context) constraining ``var`` to the domain.

        ADOM ignores the context; PREFIX and LENGTH relate ``var`` to both
        the active domain and the values of the context variables (the
        paper's ``adom(D)`` and the components of the free tuple).
        """
        alphabet = self.structure.alphabet
        adom = sorted(self.database.adom)
        if kind is QuantKind.ADOM:
            rel = RelationAutomaton.from_tuples(alphabet, 1, [(s,) for s in adom])
            return rel, (var,)
        if kind is QuantKind.PREFIX:
            base_set = extension_set_relation(alphabet, adom, self.slack)
            near = near_prefix_relation(alphabet, self.slack)
        elif kind is QuantKind.LENGTH:
            max_len = max((len(s) for s in adom), default=0)
            base_set = length_bound_set_relation(alphabet, max_len + self.slack)
            near = length_le_plus_relation(alphabet, self.slack)
        else:  # pragma: no cover - exhaustive
            raise EvaluationError(f"unexpected kind {kind}")
        # dom(x, y_1..y_m) = x in base_set  or  near(x, y_i) for some i.
        target = tuple(sorted((var, *context)))
        acc, acc_vars = self._align(base_set, (var,), target)
        for other in context:
            pair, pair_vars = self._align_binary(near, var, other)
            pair, pair_vars = self._align(pair, pair_vars, target)
            acc = acc.union(pair)
        return acc, target

    # ------------------------------------------------------------ alignment

    def _align(
        self,
        rel: RelationAutomaton,
        variables: tuple[str, ...],
        target: tuple[str, ...],
    ) -> tuple[RelationAutomaton, tuple[str, ...]]:
        """Cylindrify/reorder ``rel`` from ``variables`` onto ``target``.

        ``target`` must be sorted and contain all of ``variables``.
        """
        if variables == target:
            return rel, target
        assert set(variables) <= set(target), (variables, target)
        current = list(variables)
        for i, name in enumerate(target):
            if name not in current:
                rel = rel.cylindrify(i)
                current.insert(i, name)
        if tuple(current) != target:  # pragma: no cover - defensive
            perm = [current.index(name) for name in target]
            rel = rel.reorder(perm)
        return rel, target

    def _align_binary(
        self, rel: RelationAutomaton, first: str, second: str
    ) -> tuple[RelationAutomaton, tuple[str, ...]]:
        """Name a binary relation's tracks (first, second), sorted order."""
        if first < second:
            return rel, (first, second)
        return rel.reorder([1, 0]), (second, first)

    # --------------------------------------------------------------- atoms

    def _atom(self, atom: Atom) -> tuple[RelationAutomaton, tuple[str, ...]]:
        if not all(isinstance(t, Var) for t in atom.args):
            raise EvaluationError(
                "atoms must have plain variable arguments (run flatten_terms)"
            )
        key = (atom.pred, atom.param, tuple(t.name for t in atom.args))  # type: ignore[union-attr]
        cached = self._atom_cache.get(key)
        if cached is not None:
            return cached
        base = self.structure.atom_relation(atom)
        result = self._bind_tracks(base, atom.args)
        self._atom_cache[key] = result
        return result

    def _rel_atom(self, atom: RelAtom) -> tuple[RelationAutomaton, tuple[str, ...]]:
        if atom.name not in self._rel_cache:
            self._rel_cache[atom.name] = self.database.relation_automaton(atom.name)
        base = self._rel_cache[atom.name]
        if base.arity != len(atom.args):
            raise EvaluationError(
                f"relation {atom.name!r} has arity {base.arity}, used with {len(atom.args)}"
            )
        return self._bind_tracks(base, atom.args)

    def _bind_tracks(
        self, rel: RelationAutomaton, args: Sequence
    ) -> tuple[RelationAutomaton, tuple[str, ...]]:
        """Map argument variables onto tracks: merge repeats, sort tracks."""
        names = []
        for t in args:
            if not isinstance(t, Var):
                raise EvaluationError(
                    "atoms must have plain variable arguments (run flatten_terms)"
                )
            names.append(t.name)
        # Merge repeated variables: constrain equal, then drop the later track.
        while True:
            dup = None
            for j in range(len(names)):
                for i in range(j):
                    if names[i] == names[j]:
                        dup = (i, j)
                        break
                if dup:
                    break
            if not dup:
                break
            i, j = dup
            rel = rel.duplicate_constrain(i, j).project(j)
            del names[j]
        order = tuple(sorted(names))
        if tuple(names) != order:
            perm = _permutation(names, order)
            rel = rel.reorder(perm)
        return rel, order


def _permutation(current: list[str], target: tuple[str, ...]) -> list[int]:
    """Permutation p with target[i] = current[p[i]] (names are distinct)."""
    index = {name: i for i, name in enumerate(current)}
    return [index[name] for name in target]


def evaluate(
    formula: Formula,
    structure: StringStructure,
    database: Database,
    slack: int = 0,
) -> QueryResult:
    """One-shot convenience wrapper around :class:`AutomataEngine`."""
    return AutomataEngine(structure, database, slack=slack).run(formula)
