"""Monadic second-order logic over finite strings.

MSO(SC) is the yardstick of Proposition 5: every MSO query (3-colorability
included) is expressible in RC(S_len) over bounded-width databases.  This
module gives MSO over *strings* — positions, the label predicates ``Q_a``,
order, and set quantification — whose classical equivalence with regular
languages (Buchi-Elgot-Trakhtenbrot) is implemented in
:mod:`repro.mso.to_dfa`.

Position variables are lowercase by convention, set variables uppercase,
but nothing is enforced beyond the node types used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class MsoFormula:
    """Base class of MSO formula nodes."""

    def children(self) -> tuple["MsoFormula", ...]:
        return ()

    def walk(self) -> Iterator["MsoFormula"]:
        yield self
        for c in self.children():
            yield from c.walk()

    def free_position_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def free_set_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def __and__(self, other: "MsoFormula") -> "MsoFormula":
        return MsoAnd((self, other))

    def __or__(self, other: "MsoFormula") -> "MsoFormula":
        return MsoOr((self, other))

    def __invert__(self) -> "MsoFormula":
        return MsoNot(self)


@dataclass(frozen=True)
class Label(MsoFormula):
    """``Q_a(x)``: position ``x`` carries symbol ``symbol``."""

    var: str
    symbol: str

    def free_position_vars(self) -> frozenset[str]:
        return frozenset([self.var])

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"Q_{self.symbol}({self.var})"


@dataclass(frozen=True)
class Less(MsoFormula):
    """``x < y`` on positions."""

    left: str
    right: str

    def free_position_vars(self) -> frozenset[str]:
        return frozenset([self.left, self.right])

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.left} < {self.right}"


@dataclass(frozen=True)
class Succ(MsoFormula):
    """``y = x + 1`` on positions."""

    left: str
    right: str

    def free_position_vars(self) -> frozenset[str]:
        return frozenset([self.left, self.right])

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.right} = {self.left}+1"


@dataclass(frozen=True)
class PosEq(MsoFormula):
    """``x = y`` on positions."""

    left: str
    right: str

    def free_position_vars(self) -> frozenset[str]:
        return frozenset([self.left, self.right])

    def free_set_vars(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class InSet(MsoFormula):
    """``x in X``: position membership in a set variable."""

    pos: str
    set_var: str

    def free_position_vars(self) -> frozenset[str]:
        return frozenset([self.pos])

    def free_set_vars(self) -> frozenset[str]:
        return frozenset([self.set_var])

    def __str__(self) -> str:
        return f"{self.pos} in {self.set_var}"


@dataclass(frozen=True)
class MsoNot(MsoFormula):
    inner: MsoFormula

    def children(self) -> tuple[MsoFormula, ...]:
        return (self.inner,)

    def free_position_vars(self) -> frozenset[str]:
        return self.inner.free_position_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.inner.free_set_vars()

    def __str__(self) -> str:
        return f"!({self.inner})"


@dataclass(frozen=True)
class MsoAnd(MsoFormula):
    parts: tuple[MsoFormula, ...]

    def children(self) -> tuple[MsoFormula, ...]:
        return self.parts

    def free_position_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_position_vars()
        return out

    def free_set_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_set_vars()
        return out

    def __str__(self) -> str:
        return " & ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class MsoOr(MsoFormula):
    parts: tuple[MsoFormula, ...]

    def children(self) -> tuple[MsoFormula, ...]:
        return self.parts

    def free_position_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_position_vars()
        return out

    def free_set_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_set_vars()
        return out

    def __str__(self) -> str:
        return " | ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class ExistsPos(MsoFormula):
    var: str
    body: MsoFormula

    def children(self) -> tuple[MsoFormula, ...]:
        return (self.body,)

    def free_position_vars(self) -> frozenset[str]:
        return self.body.free_position_vars() - {self.var}

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars()

    def __str__(self) -> str:
        return f"exists {self.var}. ({self.body})"


@dataclass(frozen=True)
class ExistsSet(MsoFormula):
    var: str
    body: MsoFormula

    def children(self) -> tuple[MsoFormula, ...]:
        return (self.body,)

    def free_position_vars(self) -> frozenset[str]:
        return self.body.free_position_vars()

    def free_set_vars(self) -> frozenset[str]:
        return self.body.free_set_vars() - {self.var}

    def __str__(self) -> str:
        return f"EXISTS {self.var}. ({self.body})"


def forall_pos(var: str, body: MsoFormula) -> MsoFormula:
    return MsoNot(ExistsPos(var, MsoNot(body)))


def forall_set(var: str, body: MsoFormula) -> MsoFormula:
    return MsoNot(ExistsSet(var, MsoNot(body)))


def implies(a: MsoFormula, b: MsoFormula) -> MsoFormula:
    return MsoOr((MsoNot(a), b))
