"""Buchi-Elgot-Trakhtenbrot: MSO over strings -> finite automata.

A formula with free position variables ``p1..pm`` and free set variables
``X1..Xn`` defines a language over the extended alphabet ``Sigma x
{0,1}^(m+n)``: each extra bit track records where a variable points /
which positions a set contains.  Compilation is structural:

* atoms -> small hand-built DFAs;
* boolean connectives -> products and complements (within the *valid*
  language: every position-variable track carries exactly one 1);
* ``exists`` -> drop the variable's track (NFA projection + subset
  construction).

This gives the classical theorem "MSO-definable = regular", which the
paper uses twice: MSO provides the hard queries of Proposition 5, and the
FO[<] fragment characterizes the star-free languages definable over S.
"""

from __future__ import annotations

from repro.automata import kernel
from repro.automata.dfa import DFA
from repro.automata.nfa import NFA
from repro.errors import EvaluationError
from repro.mso.formulas import (
    ExistsPos,
    ExistsSet,
    InSet,
    Label,
    Less,
    MsoAnd,
    MsoFormula,
    MsoNot,
    MsoOr,
    PosEq,
    Succ,
)
from repro.strings.alphabet import Alphabet

# Extended symbols are (char, bits) with bits a tuple aligned to the sorted
# tuple of (kind, name) variable keys; kind "p" (position) sorts before "s"
# (set) only by the tuple ordering of names -- we simply sort the pairs.

VarKey = tuple[str, str]  # ("p"|"s", name)


def _ext_symbols(alphabet: Alphabet, n_tracks: int):
    import itertools

    out = []
    for ch in alphabet.symbols:
        for bits in itertools.product((0, 1), repeat=n_tracks):
            out.append((ch, bits))
    return out


def _valid_dfa(alphabet: Alphabet, keys: tuple[VarKey, ...]) -> DFA:
    """Words where every position-variable track has exactly one 1."""
    symbols = _ext_symbols(alphabet, len(keys))
    pos_tracks = [i for i, (kind, _name) in enumerate(keys) if kind == "p"]
    # State: frozenset of position tracks already seen.
    import itertools as it

    states = [frozenset(s) for r in range(len(pos_tracks) + 1) for s in it.combinations(pos_tracks, r)]
    transitions: dict[object, dict[object, object]] = {}
    for state in states:
        delta = {}
        for sym in symbols:
            _ch, bits = sym
            ones = {i for i in pos_tracks if bits[i] == 1}
            if ones & state:
                continue  # a position track fired twice
            delta[sym] = state | ones
        transitions[state] = delta
    full = frozenset(pos_tracks)
    return DFA(symbols, states, frozenset(), [full], transitions)


class MsoCompiler:
    """Compiles MSO formulas to DFAs over the extended alphabet."""

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet

    def compile(self, formula: MsoFormula) -> tuple[DFA, tuple[VarKey, ...]]:
        """Return (dfa, variable keys in track order) for ``formula``."""
        keys = self._keys(formula)
        dfa = self._build(formula, keys)
        return dfa, keys

    def compile_sentence(self, formula: MsoFormula) -> DFA:
        """Compile a sentence to a plain DFA over the alphabet."""
        dfa, keys = self.compile(formula)
        if keys:
            raise EvaluationError(f"not a sentence; free variables {keys}")
        return kernel.minimize_dfa(dfa.map_symbols(lambda sym: sym[0]))

    def _keys(self, f: MsoFormula) -> tuple[VarKey, ...]:
        return tuple(
            sorted(
                {("p", v) for v in f.free_position_vars()}
                | {("s", v) for v in f.free_set_vars()}
            )
        )

    # ------------------------------------------------------------ recursion

    def _build(self, f: MsoFormula, keys: tuple[VarKey, ...]) -> DFA:
        index = {k: i for i, k in enumerate(keys)}
        symbols = _ext_symbols(self.alphabet, len(keys))
        if isinstance(f, Label):
            i = index[("p", f.var)]
            return self._single_track_dfa(symbols, lambda sym: sym[1][i] == 1 and sym[0] == f.symbol, {i})
        if isinstance(f, InSet):
            p = index[("p", f.pos)]
            s = index[("s", f.set_var)]
            return self._single_track_dfa(
                symbols, lambda sym: sym[1][p] == 1 and sym[1][s] == 1, {p}
            )
        if isinstance(f, PosEq):
            a, b = index[("p", f.left)], index[("p", f.right)]
            return self._single_track_dfa(
                symbols, lambda sym: sym[1][a] == 1 and sym[1][b] == 1, {a, b}
            )
        if isinstance(f, (Less, Succ)):
            return self._order_dfa(f, keys, symbols, index)
        if isinstance(f, MsoNot):
            # ¬f within the valid words: one fused kernel pipeline
            # (complement ∧ valid, minimized) — no dict intermediates.
            inner = self._cylindrified(f.inner, keys)
            return kernel.complement_within(inner, _valid_dfa(self.alphabet, keys))
        if isinstance(f, MsoAnd):
            parts = [self._cylindrified(p, keys) for p in f.parts]
            return kernel.intersect_all_minimized(parts)
        if isinstance(f, MsoOr):
            parts = [self._cylindrified(p, keys) for p in f.parts]
            return kernel.union_all_within(parts, _valid_dfa(self.alphabet, keys))
        if isinstance(f, (ExistsPos, ExistsSet)):
            kind = "p" if isinstance(f, ExistsPos) else "s"
            inner_keys = tuple(sorted(set(keys) | {(kind, f.var)}))
            inner = self._build(f.body, inner_keys)
            drop = inner_keys.index((kind, f.var))
            return self._project(inner, drop, keys)
        raise EvaluationError(f"unknown MSO node {f!r}")

    def _single_track_dfa(self, symbols, predicate, needed_tracks: set[int]) -> DFA:
        """Accepts words containing a position where ``predicate`` holds,
        with exactly-one-1 discipline handled by the valid filter later.

        For atoms anchored at position variables the standard construction:
        the atom holds iff the (unique) position flagged on those tracks
        satisfies the predicate, so: scan for a flagged column satisfying
        it, reject if a flagged column violates it.
        """
        transitions: dict[object, dict[object, object]] = {0: {}, 1: {}}
        for sym in symbols:
            _ch, bits = sym
            flagged = any(bits[t] == 1 for t in needed_tracks)
            if not flagged:
                transitions[0][sym] = 0
                transitions[1][sym] = 1
            elif predicate(sym):
                transitions[0][sym] = 1
                # After acceptance more flags would violate validity; the
                # valid filter rejects those words anyway, so loop safely
                # only on unflagged symbols (handled above).
            # flagged but predicate false from state 0: no transition (reject).
        return DFA(symbols, [0, 1], 0, [1], transitions)

    def _order_dfa(self, f, keys, symbols, index) -> DFA:
        a = index[("p", f.left)]
        b = index[("p", f.right)]
        # States: 0 = neither seen; 1 = left seen (right must come later,
        # immediately for Succ); 2 = done.
        transitions: dict[object, dict[object, object]] = {0: {}, 1: {}, 2: {}}
        strict_succ = isinstance(f, Succ)
        for sym in symbols:
            _ch, bits = sym
            la, lb = bits[a] == 1, bits[b] == 1
            if not la and not lb:
                transitions[0][sym] = 0
                transitions[2][sym] = 2
                if not strict_succ:
                    transitions[1][sym] = 1
            elif la and not lb:
                transitions[0][sym] = 1
            elif lb and not la:
                transitions[1][sym] = 2
            # la and lb simultaneously: x < y impossible, no transition.
        dfa = DFA(symbols, [0, 1, 2], 0, [2], transitions)
        return dfa

    def _cylindrified(self, f: MsoFormula, keys: tuple[VarKey, ...]) -> DFA:
        """Build ``f`` then add the tracks of ``keys`` it does not use."""
        own = self._keys(f)
        inner = self._build(f, own)
        if own == keys:
            return inner
        own_index = {k: i for i, k in enumerate(own)}
        positions = [own_index.get(k) for k in keys]

        # Expand symbols: each target symbol maps to the source symbol
        # obtained by keeping only the tracks f uses.
        target_symbols = _ext_symbols(self.alphabet, len(keys))
        transitions: dict[object, dict[object, object]] = {}
        for q, delta in inner.transitions.items():
            new_delta = {}
            for sym in target_symbols:
                ch, bits = sym
                reduced = (ch, tuple(bits[i] for i, k in enumerate(keys) if k in own_index))
                target = delta.get(reduced)
                if target is not None:
                    new_delta[sym] = target
            if new_delta:
                transitions[q] = new_delta
        return DFA(target_symbols, inner.states, inner.start, inner.accepting, transitions)

    def _project(self, dfa: DFA, drop: int, keys: tuple[VarKey, ...]) -> DFA:
        """Remove track ``drop`` (NFA projection + kernel determinize).

        Returns the minimal DFA directly: the kernel's bitmask subset
        construction feeds its dense Hopcroft pass in one chain.
        """
        target_symbols = _ext_symbols(self.alphabet, len(keys))
        transitions: dict[object, dict[object, set[object]]] = {}
        for q, delta in dfa.transitions.items():
            for sym, t in delta.items():
                ch, bits = sym
                reduced = (ch, bits[:drop] + bits[drop + 1:])
                transitions.setdefault(q, {}).setdefault(reduced, set()).add(t)
        nfa = NFA(target_symbols, dfa.states, [dfa.start], dfa.accepting, transitions)
        return kernel.determinize_minimized(nfa)


def mso_to_dfa(formula: MsoFormula, alphabet: Alphabet) -> DFA:
    """Compile an MSO *sentence* to a minimal DFA over ``alphabet``."""
    return MsoCompiler(alphabet).compile_sentence(formula)
