"""Proposition 5: MSO queries in RC(S_len) over bounded-width databases.

The paper: "For every fixed k, all MSO(SC)-expressible queries can be
expressed over databases of width at most k in RC(S_len)" — so RC(S_len)
contains NP-complete (3-colorability) and coNP-complete queries on such
inputs, which is the hardness half of Theorem 2's PH bound.

This module implements the classical witness: **graph 3-colorability**.

Encoding (matches :func:`repro.database.graph_database`): vertex ``i`` is
the string ``1^i 0`` — a prefix antichain (width 1) whose members have
pairwise distinct lengths.  A set ``C`` of vertices is coded by a single
string ``y``: vertex ``v`` is in ``C`` iff the prefix ``p`` of ``y`` with
``|p| = |v|`` ends in ``1``.  Membership is then the RC(S_len) formula::

    in(v, y) = exists p: p <<= y and el(p, v) and last(p, '1')

and 3-colorability quantifies three color strings (length-restricted —
``|y| <= max |adom|`` suffices), checks that the colors cover every vertex
with no vertex twice, and that edges are bichromatic.  Evaluating this
query through the direct engine costs ``2^O(n)`` — exactly the
exponential the ``down`` operator / LENGTH domain price that the paper
calls unavoidable.
"""

from __future__ import annotations

import itertools

from repro.database.instance import Database
from repro.eval.direct import DirectEngine
from repro.logic.dsl import (
    and_,
    el,
    exists,
    exists_len,
    exists_prefix,
    forall_adom,
    implies,
    last,
    not_,
    or_,
    prefix,
    rel,
)
from repro.logic.formulas import Formula, QuantKind
from repro.structures.catalog import S_len
from repro.strings.alphabet import Alphabet


def member_formula(vertex_var: str, color_var: str, p_var: str) -> Formula:
    """``in(vertex, color)`` via the equal-length prefix trick."""
    return exists_prefix(
        p_var,
        and_(
            prefix(p_var, color_var),
            el(p_var, vertex_var),
            last(p_var, "1"),
        ),
    )


def three_colorability_sentence() -> Formula:
    """The RC(S_len) sentence "the graph (V, E) is 3-colorable".

    Color classes are the strings ``y1, y2, y3`` (length-restricted);
    schema: unary ``V``, binary ``E``.
    """
    v, u = "v", "u"
    colors = ("y1", "y2", "y3")

    def inc(vertex: str, color: str, tag: str) -> Formula:
        return member_formula(vertex, color, f"p{tag}")

    some_color = or_(*[inc(v, c, f"a{i}") for i, c in enumerate(colors)])
    not_two = and_(
        *[
            not_(and_(inc(v, c1, f"b{i}"), inc(v, c2, f"c{i}")))
            for i, (c1, c2) in enumerate(itertools.combinations(colors, 2))
        ]
    )
    proper = forall_adom(
        v, implies(rel("V", v), and_(some_color, not_two))
    )
    edges_ok = forall_adom(
        u,
        forall_adom(
            v,
            implies(
                rel("E", u, v),
                and_(
                    *[
                        not_(and_(inc(u, c, f"d{i}"), inc(v, c, f"e{i}")))
                        for i, c in enumerate(colors)
                    ]
                ),
            ),
        ),
    )
    body = and_(proper, edges_ok)
    sentence: Formula = body
    for c in reversed(colors):
        sentence = exists_len(c, sentence)
    return sentence


def is_three_colorable_via_rc_slen(database: Database) -> bool:
    """Decide 3-colorability by evaluating the RC(S_len) sentence.

    ``database`` must use the ``1^i 0`` vertex encoding
    (:func:`repro.database.graph_database`).  Exponential in the number of
    vertices — that is Proposition 5's point, benchmarked in
    ``benchmarks/bench_prop5_np_hardness.py``.
    """
    engine = DirectEngine(S_len(database.alphabet), database, slack=0)
    return engine.decide(three_colorability_sentence())


def is_three_colorable_bruteforce(n_vertices: int, edges: list[tuple[int, int]]) -> bool:
    """Baseline: try all ``3^n`` colorings directly on the graph."""
    for coloring in itertools.product(range(3), repeat=n_vertices):
        if all(coloring[u] != coloring[w] for (u, w) in edges):
            return True
    return n_vertices == 0
