"""MSO over strings, and the Proposition 5 (NP-hardness) pipeline."""

from repro.mso.formulas import (
    ExistsPos,
    ExistsSet,
    InSet,
    Label,
    Less,
    MsoAnd,
    MsoFormula,
    MsoNot,
    MsoOr,
    PosEq,
    Succ,
    forall_pos,
    forall_set,
    implies,
)
from repro.mso.prop5 import (
    is_three_colorable_bruteforce,
    is_three_colorable_via_rc_slen,
    member_formula,
    three_colorability_sentence,
)
from repro.mso.to_dfa import MsoCompiler, mso_to_dfa

__all__ = [
    "ExistsPos",
    "ExistsSet",
    "InSet",
    "Label",
    "Less",
    "MsoAnd",
    "MsoCompiler",
    "MsoFormula",
    "MsoNot",
    "MsoOr",
    "PosEq",
    "Succ",
    "forall_pos",
    "forall_set",
    "implies",
    "is_three_colorable_bruteforce",
    "is_three_colorable_via_rc_slen",
    "member_formula",
    "mso_to_dfa",
    "three_colorability_sentence",
]
