"""Deciding the first-order theories of the string structures.

The paper leans on the decidability of ``Th(S_len)`` (its reference [10])
for Theorem 5; since S, S_left, S_reg are reducts of S_len, their theories
are decidable too.  This module is the public face of that fact: sentences
over any tame structure, with arbitrary natural quantification and *no*
database relations, are decided exactly by the automatic-structure engine.

Examples
--------
>>> from repro.theory import decide
>>> from repro.strings import BINARY
>>> decide("forall x: exists y: ext1(x, y)", BINARY)          # successors exist
True
>>> decide("exists x: forall y: len_le(y, x)", BINARY, "S_len")  # no longest string
False
"""

from __future__ import annotations

from typing import Union

from repro.database.instance import Database
from repro.errors import EvaluationError
from repro.eval.automata_engine import AutomataEngine
from repro.logic.formulas import Formula
from repro.logic.parser import parse_formula
from repro.strings.alphabet import Alphabet, BINARY
from repro.structures.base import StringStructure
from repro.structures.catalog import by_name


def decide(
    sentence: Union[str, Formula],
    alphabet: Alphabet = BINARY,
    structure: Union[str, StringStructure] = "S_len",
) -> bool:
    """Truth value of a database-free sentence over the structure.

    Raises :class:`EvaluationError` if the sentence mentions database
    relations (theories speak about the structure alone) or has free
    variables.
    """
    if isinstance(structure, str):
        structure = by_name(structure, alphabet)
    formula = parse_formula(sentence) if isinstance(sentence, str) else sentence
    if formula.relation_names():
        raise EvaluationError(
            "theory sentences must not mention database relations"
        )
    if formula.free_variables():
        raise EvaluationError(
            f"not a sentence: free variables {sorted(formula.free_variables())}"
        )
    structure.check_formula(formula)
    empty = Database(alphabet, {})
    return AutomataEngine(structure, empty).decide(formula)


def solutions(
    formula: Union[str, Formula],
    alphabet: Alphabet = BINARY,
    structure: Union[str, StringStructure] = "S_len",
):
    """The definable relation of a database-free formula, as a
    :class:`~repro.eval.result.QueryResult` (possibly infinite, always a
    regular set — the automatic-structure guarantee)."""
    if isinstance(structure, str):
        structure = by_name(structure, alphabet)
    parsed = parse_formula(formula) if isinstance(formula, str) else formula
    if parsed.relation_names():
        raise EvaluationError("definable relations must be database-free")
    structure.check_formula(parsed)
    empty = Database(alphabet, {})
    return AutomataEngine(structure, empty).run(parsed)
