"""strqlib — string operations in query languages.

A complete, executable reproduction of *"String Operations in Query
Languages"* (Benedikt, Libkin, Schwentick, Segoufin — PODS 2001): the
relational calculi RC(S), RC(S_left), RC(S_reg), RC(S_len) over string
databases, their relational algebras, safety analyses, and the problematic
RC_concat, together with the automata-theoretic machinery that makes all
of it decidable.

Quick start::

    from repro import Query, StringDatabase

    db = StringDatabase("01", {"R": {"0110", "001"}})
    # The paper's Section 2 example: strings in R ending with "10".
    q = Query("R(x) & last(x, '0') & exists y: ext1(y, x) & last(y, '1')")
    q.run(db).rows()        # [('0110',)]
    q.is_safe_on(db)        # True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction of every figure and claim.
"""

from repro.core import (
    Query,
    StringDatabase,
    Table,
    definable_language,
    language_is_star_free,
    parse_query,
)
from repro.database import Database, Schema
from repro.errors import (
    EvaluationError,
    EvaluationTimeout,
    ParseError,
    ReproError,
    ServiceError,
    SignatureError,
    UndecidableError,
    UnsafeQueryError,
)
from repro.logic import parse_formula
from repro.strings import ABC, Alphabet, BINARY
from repro.structures import S, S_left, S_len, S_reg

__version__ = "1.0.0"

__all__ = [
    "ABC",
    "Alphabet",
    "BINARY",
    "Database",
    "EvaluationError",
    "EvaluationTimeout",
    "ParseError",
    "Query",
    "ReproError",
    "S",
    "S_left",
    "S_len",
    "S_reg",
    "Schema",
    "ServiceError",
    "SignatureError",
    "StringDatabase",
    "Table",
    "UndecidableError",
    "UnsafeQueryError",
    "definable_language",
    "language_is_star_free",
    "parse_formula",
    "parse_query",
]
