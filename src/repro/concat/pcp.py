"""Corollary 1 via Post's Correspondence Problem.

A PCP instance is a list of pairs ``(w_i, v_i)``; a solution is a nonempty
index sequence with ``w_{i1}...w_{ik} = v_{i1}...v_{ik}``.  PCP is
undecidable, and it reduces to state-safety of RC_concat queries:

* a solution is encoded as the *witness string*
  ``$u1%v1$u2%v2$...$uk%vk$`` listing the partial concatenations;
* :func:`witness_formula` is the RC_concat formula, built only from
  concatenation and equality, that holds exactly of valid witness strings
  (first block correct, adjacent blocks extend by one pair, last block
  balanced);
* :func:`safety_reduction` wraps it as a query ``psi(y) = exists x:
  witness(x)`` whose output is ``Sigma*`` (infinite — unsafe) when the
  instance is solvable and empty (safe) otherwise.

Hence a state-safety decider for RC_concat would solve PCP — Corollary 1.
All quantifiers in these formulas only ever need *factor* witnesses, so
the ``factors`` mode of
:class:`~repro.concat.structure.BoundedConcatEngine` checks them exactly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.concat.structure import ConcatTerm, concat
from repro.logic.dsl import and_, eq, not_, or_
from repro.logic.formulas import Exists, Forall, Formula, QuantKind
from repro.logic.terms import StrConst, Var

#: Markers used by the witness encoding; they must not occur in the
#: instance's alphabet.
BLOCK = "$"
SEP = "%"


@dataclass(frozen=True)
class PcpInstance:
    """A PCP instance: pairs of nonempty strings over a marker-free alphabet."""

    pairs: tuple[tuple[str, str], ...]

    def __post_init__(self):
        for w, v in self.pairs:
            if BLOCK in w + v or SEP in w + v:
                raise ValueError(f"pair ({w!r}, {v!r}) uses a reserved marker")

    def __len__(self) -> int:
        return len(self.pairs)


def solve_pcp(instance: PcpInstance, max_length: int = 40) -> Optional[list[int]]:
    """Breadth-first semi-decision for PCP (bounded by overhang length).

    Returns a solution index sequence, or ``None`` if none exists within
    the search bound.  (Unbounded search would be the true semi-decision
    procedure; PCP's undecidability means no bound always suffices.)
    """
    # State: the overhang string and which side it is on (+1 top, -1 bottom).
    start_states = []
    for i, (w, v) in enumerate(instance.pairs):
        if w.startswith(v):
            start_states.append((w[len(v):], 1, [i]))
        elif v.startswith(w):
            start_states.append((v[len(w):], -1, [i]))
    queue = deque(start_states)
    seen: set[tuple[str, int]] = set()
    while queue:
        overhang, side, path = queue.popleft()
        if overhang == "" and path:
            return path
        if (overhang, side) in seen or len(overhang) > max_length:
            continue
        seen.add((overhang, side))
        for i, (w, v) in enumerate(instance.pairs):
            if side == 1:  # top is ahead by `overhang`
                top = overhang + w
                bottom = v
            else:
                top = w
                bottom = overhang + v
            if top.startswith(bottom):
                queue.append((top[len(bottom):], 1, path + [i]))
            elif bottom.startswith(top):
                queue.append((bottom[len(top):], -1, path + [i]))
    return None


def encode_solution(instance: PcpInstance, indices: Sequence[int]) -> str:
    """The witness string for a solution index sequence."""
    u = v = ""
    blocks = []
    for i in indices:
        w, vv = instance.pairs[i]
        u += w
        v += vv
        blocks.append(f"{u}{SEP}{v}")
    return BLOCK + BLOCK.join(blocks) + BLOCK


def is_witness(instance: PcpInstance, x: str) -> bool:
    """Direct (non-logical) check that ``x`` is a valid witness string."""
    if len(x) < 2 or not x.startswith(BLOCK) or not x.endswith(BLOCK):
        return False
    body = x[1:-1]
    if not body:
        return False
    blocks = body.split(BLOCK)
    pairs = []
    for block in blocks:
        if block.count(SEP) != 1:
            return False
        u, v = block.split(SEP)
        if BLOCK in u or BLOCK in v:
            return False
        pairs.append((u, v))
    # First block must be one of the instance pairs.
    if pairs[0] not in instance.pairs:
        return False
    for (u, v), (u2, v2) in zip(pairs, pairs[1:]):
        if not any(
            u2 == u + w and v2 == v + vv for (w, vv) in instance.pairs
        ):
            return False
    return pairs[-1][0] == pairs[-1][1]


# ----------------------------------------------------------- the formulas


def _marker_free(var: str) -> Formula:
    """``var`` contains neither marker (via concat decompositions)."""
    a, b = f"_{var}a", f"_{var}b"

    def contains(marker: str) -> Formula:
        inner = eq(Var(var), concat(Var(a), marker, Var(b)))
        return Exists(a, Exists(b, inner, QuantKind.NATURAL), QuantKind.NATURAL)

    return and_(not_(contains(BLOCK)), not_(contains(SEP)))


def _well_formed(var: str) -> Formula:
    """Every maximal ``$``-free factor between two ``$`` markers of ``var``
    has the shape ``u%v`` with ``u, v`` percent-free.

    This pins the block decomposition uniquely, so the adjacency constraint
    below really ranges over *all* consecutive blocks (without it, garbage
    segments could make adjacency vacuously true).
    """
    x = Var(var)
    z, p, q = "_z", "_wp", "_wq"
    shape = eq(x, concat(Var(p), BLOCK, Var(z), BLOCK, Var(q)))
    a, b = "_wa", "_wb"
    z_has_block = Exists(
        a,
        Exists(b, eq(Var(z), concat(Var(a), BLOCK, Var(b))), QuantKind.NATURAL),
        QuantKind.NATURAL,
    )
    u, v = "_wu", "_wv"

    def percent_free(name: str, tag: str) -> Formula:
        c, d = f"_{tag}c", f"_{tag}d"
        return not_(
            Exists(
                c,
                Exists(d, eq(Var(name), concat(Var(c), SEP, Var(d))), QuantKind.NATURAL),
                QuantKind.NATURAL,
            )
        )

    z_is_pair = Exists(
        u,
        Exists(
            v,
            and_(
                eq(Var(z), concat(Var(u), SEP, Var(v))),
                percent_free(u, "u"),
                percent_free(v, "v"),
            ),
            QuantKind.NATURAL,
        ),
        QuantKind.NATURAL,
    )
    body: Formula = and_(shape, not_(z_has_block)).implies(z_is_pair)
    for name in [q, z, p]:
        body = Forall(name, body, QuantKind.NATURAL)
    return body


def witness_formula(instance: PcpInstance, var: str = "x") -> Formula:
    """The RC_concat formula "``var`` encodes a PCP solution".

    Built from concatenation, equality and (natural) quantification only —
    exactly the vocabulary of Section 3's RC_concat.
    """
    x = Var(var)

    # (1) First block: x = $w_i%v_i$q for some pair i.
    first = or_(
        *[
            Exists(
                "_q",
                eq(x, concat(BLOCK + w + SEP + v + BLOCK, Var("_q"))),
                QuantKind.NATURAL,
            )
            for (w, v) in instance.pairs
        ]
    )

    # (2) Last block balanced: x = p$u%u$ with u marker-free.
    last = Exists(
        "_p",
        Exists(
            "_u",
            and_(
                eq(x, concat(Var("_p"), BLOCK, Var("_u"), SEP, Var("_u"), StrConst(BLOCK))),
                _marker_free("_u"),
            ),
            QuantKind.NATURAL,
        ),
        QuantKind.NATURAL,
    )

    # (3) Adjacent blocks extend by one pair:
    # forall p,q,u,v,u2,v2: x = p$u%v$u2%v2$q (with u,v,u2,v2 marker-free)
    #   -> some pair i with u2 = u.w_i and v2 = v.v_i.
    shape = eq(
        x,
        concat(
            Var("_p"), BLOCK, Var("_u"), SEP, Var("_v"),
            BLOCK, Var("_u2"), SEP, Var("_v2"), StrConst(BLOCK), Var("_q"),
        ),
    )
    blockish = and_(
        shape,
        _marker_free("_u"),
        _marker_free("_v"),
        _marker_free("_u2"),
        _marker_free("_v2"),
    )
    extends = or_(
        *[
            and_(
                eq(Var("_u2"), ConcatTerm(Var("_u"), StrConst(w))),
                eq(Var("_v2"), ConcatTerm(Var("_v"), StrConst(v))),
            )
            for (w, v) in instance.pairs
        ]
    )
    adjacency: Formula = blockish.implies(extends)
    for name in ["_q", "_v2", "_u2", "_v", "_u", "_p"]:
        adjacency = Forall(name, adjacency, QuantKind.NATURAL)

    return and_(first, last, _well_formed(var), adjacency)


def safety_reduction(instance: PcpInstance, out_var: str = "y") -> Formula:
    """Corollary 1's reduction target: ``psi(y) = exists x: witness(x)``.

    ``psi`` returns all of ``Sigma*`` (unsafe) iff the instance is
    solvable, and the empty set (safe) otherwise.  A state-safety decider
    for RC_concat would therefore decide PCP.
    """
    inner = witness_formula(instance, "x")
    return and_(eq(Var(out_var), Var(out_var)), Exists("x", inner, QuantKind.NATURAL))
