"""Proposition 1: RC_concat expresses all computable queries.

The proof encodes Turing-machine computations as strings and checks them
in first-order logic over concatenation.  This module implements that
encoding for single-tape deterministic machines:

* a configuration is ``l q r``: tape-left, state symbol, tape-from-head;
* a computation history is ``$c_0$c_1$...$c_k$``;
* :func:`acceptance_formula` builds the RC_concat sentence "there exists
  an accepting history for input w": the first configuration is
  ``q_0 w``, consecutive configurations are related by the one-step
  relation (a finite disjunction of local concatenation patterns — this is
  where concatenation's power does all the work), and the last
  configuration contains the accepting state.

State and tape symbols must be single characters, pairwise distinct, and
distinct from the ``$`` history marker.  The formula is checkable with the
pattern-matching fast path of
:class:`~repro.concat.structure.BoundedConcatEngine`: every quantifier
ranges over factors of the history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.concat.structure import concat
from repro.logic.dsl import and_, eq, not_, or_
from repro.logic.formulas import Exists, Forall, Formula, QuantKind
from repro.logic.terms import Var

MARK = "$"


@dataclass(frozen=True)
class TuringMachine:
    """A deterministic one-tape TM with single-character symbols.

    ``transitions`` maps ``(state, symbol) -> (state', symbol', move)``
    with ``move`` in ``{"L", "R"}``; ``blank`` is the blank tape symbol.
    """

    states: tuple[str, ...]
    tape_symbols: tuple[str, ...]
    start: str
    accept: str
    blank: str
    transitions: dict[tuple[str, str], tuple[str, str, str]]

    def __post_init__(self):
        chars = set(self.states) | set(self.tape_symbols)
        if any(len(c) != 1 for c in chars):
            raise ValueError("states and tape symbols must be single characters")
        if len(chars) != len(self.states) + len(self.tape_symbols):
            raise ValueError("states and tape symbols must be pairwise distinct")
        if MARK in chars:
            raise ValueError(f"{MARK!r} is reserved for the history encoding")
        if self.blank not in self.tape_symbols:
            raise ValueError("blank must be a tape symbol")

    # -------------------------------------------------------------- running

    def run(self, tape: str, max_steps: int = 10_000) -> Optional[list[str]]:
        """Run the machine; return the configuration history if it accepts.

        Configurations are normalized: no leading blanks on the left part,
        the right part always contains the head symbol (extended with a
        blank when the head walks off the right end).
        """
        left, state, right = "", self.start, tape or self.blank
        history = [self._config(left, state, right)]
        for _ in range(max_steps):
            if state == self.accept:
                return history
            symbol = right[0] if right else self.blank
            key = (state, symbol)
            if key not in self.transitions:
                return None  # halt without accepting
            state2, write, move = self.transitions[key]
            rest = right[1:] if len(right) > 1 else ""
            if move == "R":
                left = left + write
                right = rest or self.blank
            else:  # L
                if left:
                    right = left[-1] + write + rest
                    left = left[:-1]
                else:
                    right = self.blank + write + rest
            state = state2
            history.append(self._config(left, state, right))
        return None

    def _config(self, left: str, state: str, right: str) -> str:
        return f"{left}{state}{right}"

    def accepts(self, tape: str, max_steps: int = 10_000) -> bool:
        return self.run(tape, max_steps) is not None


def encode_history(history: list[str]) -> str:
    """``$c_0$c_1$...$c_k$``."""
    return MARK + MARK.join(history) + MARK


def step_formula(tm: TuringMachine, c: str, c2: str) -> Formula:
    """``c2`` follows from ``c`` in one step: a finite disjunction of
    concatenation patterns, one per transition (and per left-neighbour
    symbol for left moves)."""
    cases: list[Formula] = []
    cv, c2v = Var(c), Var(c2)
    for (state, symbol), (state2, write, move) in tm.transitions.items():
        l, r = f"_l{c}", f"_r{c}"
        lv, rv = Var(l), Var(r)
        if move == "R":
            # l q a r -> l b q' r    (r may be empty; the normalized
            # history materializes a blank when the head leaves the right
            # end, giving the second pattern).
            pat = and_(
                eq(cv, concat(lv, state + symbol, rv)),
                or_(
                    and_(
                        not_(eq(rv, _eps())),
                        eq(c2v, concat(lv, write + state2, rv)),
                    ),
                    and_(
                        eq(rv, _eps()),
                        eq(c2v, concat(lv, write + state2 + tm.blank)),
                    ),
                ),
            )
            cases.append(
                Exists(l, Exists(r, pat, QuantKind.NATURAL), QuantKind.NATURAL)
            )
        else:
            # With a left neighbour e:  l e q a r -> l q' e b r.
            for e in tm.tape_symbols:
                pat = and_(
                    eq(cv, concat(lv, e + state + symbol, rv)),
                    eq(c2v, concat(lv, state2 + e + write, rv)),
                )
                cases.append(
                    Exists(l, Exists(r, pat, QuantKind.NATURAL), QuantKind.NATURAL)
                )
            # At the left end: q a r -> q' blank b r.
            pat = and_(
                eq(cv, concat(state + symbol, rv)),
                eq(c2v, concat(state2 + tm.blank + write, rv)),
            )
            cases.append(Exists(r, pat, QuantKind.NATURAL))
    if not cases:
        from repro.logic.dsl import false

        return false
    return or_(*cases)


def _eps():
    from repro.logic.terms import EPS

    return EPS


def _marker_free(var: str) -> Formula:
    a, b = f"_m{var}a", f"_m{var}b"
    return not_(
        Exists(
            a,
            Exists(
                b,
                eq(Var(var), concat(Var(a), MARK, Var(b))),
                QuantKind.NATURAL,
            ),
            QuantKind.NATURAL,
        )
    )


def acceptance_formula(tm: TuringMachine, tape: str, var: str = "h") -> Formula:
    """RC_concat formula: ``var`` is an accepting history of ``tm`` on ``tape``.

    The sentence ``exists h: acceptance_formula(tm, w, 'h')`` is true iff
    the machine accepts ``w`` — Proposition 1's engine for expressing any
    computable property inside RC_concat.
    """
    h = Var(var)
    start_config = tm.start + (tape or tm.blank)
    # (1) The history starts with $ q0 w $.
    first = Exists(
        "_hq",
        eq(h, concat(MARK + start_config + MARK, Var("_hq"))),
        QuantKind.NATURAL,
    )
    # (2) The *last* configuration contains the accepting state:
    # h = p $ u A v $ with u, v marker-free and the $ final.
    accept = Exists(
        "_hp",
        Exists(
            "_hu",
            Exists(
                "_hv",
                and_(
                    eq(
                        h,
                        concat(
                            Var("_hp"), MARK, Var("_hu"), tm.accept, Var("_hv"), MARK
                        ),
                    ),
                    _marker_free("_hu"),
                    _marker_free("_hv"),
                ),
                QuantKind.NATURAL,
            ),
            QuantKind.NATURAL,
        ),
        QuantKind.NATURAL,
    )
    # (3) Adjacent configurations step correctly:
    # forall p, c, c2, q: h = p $ c $ c2 $ q (c, c2 marker-free)
    #   -> step(c, c2).
    shape = eq(
        h,
        concat(Var("_p"), MARK, Var("_c"), MARK, Var("_c2"), MARK, Var("_q")),
    )
    blockish = and_(shape, _marker_free("_c"), _marker_free("_c2"))
    adjacency: Formula = blockish.implies(step_formula(tm, "_c", "_c2"))
    for name in ["_q", "_c2", "_c", "_p"]:
        adjacency = Forall(name, adjacency, QuantKind.NATURAL)
    return and_(first, accept, adjacency)


def accepts_via_formula(
    tm: TuringMachine, tape: str, history: str, alphabet
) -> bool:
    """Check a candidate history against the logical acceptance criterion."""
    from repro.concat.structure import BoundedConcatEngine

    engine = BoundedConcatEngine(alphabet, mode="factors")
    return engine.holds(acceptance_formula(tm, tape), {"h": history})


def parity_machine() -> TuringMachine:
    """A tiny example machine: accepts binary strings with an even number
    of ``1`` symbols (a query famously *outside* RC(S), Corollary 2 — but
    trivially inside RC_concat by Proposition 1)."""
    # States: e (even, start), o (odd), A (accept). Tape: 0, 1, blank B.
    transitions = {
        ("e", "0"): ("e", "0", "R"),
        ("e", "1"): ("o", "1", "R"),
        ("o", "0"): ("o", "0", "R"),
        ("o", "1"): ("e", "1", "R"),
        ("e", "B"): ("A", "B", "R"),
    }
    return TuringMachine(
        states=("e", "o", "A"),
        tape_symbols=("0", "1", "B"),
        start="e",
        accept="A",
        blank="B",
        transitions=transitions,
    )
