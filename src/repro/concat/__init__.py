"""RC_concat: the problematic concatenation calculus (paper Section 3).

Proposition 1 (computational completeness, via Turing-machine histories)
and Corollary 1 (undecidable state-safety, via PCP) as runnable artifacts.
"""

from repro.concat.pcp import (
    PcpInstance,
    encode_solution,
    is_witness,
    safety_reduction,
    solve_pcp,
    witness_formula,
)
from repro.concat.structure import (
    BoundedConcatEngine,
    ConcatTerm,
    concat,
    decide_state_safety,
)
from repro.concat.turing import (
    TuringMachine,
    acceptance_formula,
    accepts_via_formula,
    encode_history,
    parity_machine,
    step_formula,
)

__all__ = [
    "BoundedConcatEngine",
    "ConcatTerm",
    "PcpInstance",
    "TuringMachine",
    "acceptance_formula",
    "accepts_via_formula",
    "concat",
    "decide_state_safety",
    "encode_history",
    "encode_solution",
    "is_witness",
    "parity_machine",
    "safety_reduction",
    "solve_pcp",
    "step_formula",
    "witness_formula",
]
