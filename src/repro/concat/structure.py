"""RC_concat: relational calculus with string concatenation (Section 3).

The term language gains binary concatenation; with it (over any alphabet
of at least two symbols) RC_concat expresses *all computable queries*
(Proposition 1), has no effective syntax for its safe fragment and an
undecidable state-safety problem (Corollary 1).

Consequently there is no exact terminating engine here — concatenation's
graph is not a synchronized-rational relation, so the automata engine
cannot exist for it.  What the library offers instead:

* :class:`ConcatTerm` — the term constructor;
* :class:`BoundedConcatEngine` — bounded-universe model checking with two
  domain modes: ``length`` (all strings up to a bound: a semi-decision
  procedure when iterated) and ``factors`` (all factors of the current
  assignment values plus formula constants: complete for the
  factor-quantified formulas produced by the Proposition 1 / Corollary 1
  reductions in :mod:`repro.concat.turing` and :mod:`repro.concat.pcp`);
* :func:`decide_state_safety` — always raises
  :class:`~repro.errors.UndecidableError`, with the PCP reduction as the
  witness for *why*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.database.instance import Database
from repro.errors import EvaluationError, UndecidableError
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import StrConst, Term
from repro.strings.alphabet import Alphabet
from repro.strings import ops as strops


@dataclass(frozen=True)
class ConcatTerm(Term):
    """``t1 . t2`` — the operation that breaks everything (Section 3)."""

    left: Term
    right: Term

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return ConcatTerm(self.left.substitute(mapping), self.right.substitute(mapping))

    def evaluate(self, assignment: dict[str, str]) -> str:
        return self.left.evaluate(assignment) + self.right.evaluate(assignment)

    def __str__(self) -> str:
        return f"concat({self.left}, {self.right})"


def concat(*terms) -> Term:
    """Right-nested concatenation of terms / literal strings."""
    from repro.logic.terms import as_term

    nodes = [t if isinstance(t, Term) else StrConst(t) for t in terms]
    if not nodes:
        return StrConst("")
    out = nodes[-1]
    for node in reversed(nodes[:-1]):
        out = ConcatTerm(node, out)
    return out


def _formula_constants(formula: Formula) -> frozenset[str]:
    consts = {""}
    for sub in formula.walk():
        if isinstance(sub, (Atom, RelAtom)):
            for t in sub.args:
                consts |= _term_constants(t)
    return frozenset(consts)


def _term_constants(term: Term) -> set[str]:
    if isinstance(term, StrConst):
        return {term.value}
    if isinstance(term, ConcatTerm):
        return _term_constants(term.left) | _term_constants(term.right)
    out: set[str] = set()
    inner = getattr(term, "inner", None)
    if inner is not None:
        out |= _term_constants(inner)
    return out


def _factors(value: str, max_factor_len: Optional[int] = None) -> Iterator[str]:
    n = len(value)
    seen: set[str] = set()
    for i in range(n + 1):
        top = n if max_factor_len is None else min(n, i + max_factor_len)
        for j in range(i, top + 1):
            f = value[i:j]
            if f not in seen:
                seen.add(f)
                yield f


class BoundedConcatEngine:
    """Model checking for RC_concat formulas over bounded domains.

    ``mode="length"``: NATURAL quantifiers range over all strings of
    length at most ``bound`` — exponential, but a true semi-decision
    procedure for existential sentences when ``bound`` grows.

    ``mode="factors"``: NATURAL quantifiers range over factors of the
    values currently assigned to free/bound variables plus the formula's
    constants.  Complete for formulas whose quantifiers only ever need
    factor witnesses — which the Proposition 1 and Corollary 1 reduction
    formulas are designed to guarantee.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        database: Optional[Database] = None,
        mode: str = "factors",
        bound: int = 4,
    ):
        if mode not in ("length", "factors"):
            raise ValueError(f"unknown mode {mode!r}")
        self.alphabet = alphabet
        self.database = database
        self.mode = mode
        self.bound = bound

    def holds(self, formula: Formula, assignment: Optional[dict[str, str]] = None) -> bool:
        assignment = dict(assignment or {})
        missing = formula.free_variables() - set(assignment)
        if missing:
            raise EvaluationError(f"unbound free variables {sorted(missing)}")
        self._constants = sorted(_formula_constants(formula), key=len)
        return self._eval(formula, assignment)

    def _eval(self, f: Formula, assignment: dict[str, str]) -> bool:
        if isinstance(f, TrueF):
            return True
        if isinstance(f, FalseF):
            return False
        if isinstance(f, Atom):
            values = [t.evaluate(assignment) for t in f.args]
            return self._eval_pred(f.pred, values, f.param)
        if isinstance(f, RelAtom):
            if self.database is None:
                raise EvaluationError("no database attached")
            values = tuple(t.evaluate(assignment) for t in f.args)
            return values in self.database.relation(f.name)
        if isinstance(f, Not):
            return not self._eval(f.inner, assignment)
        if isinstance(f, And):
            return all(self._eval(p, assignment) for p in f.parts)
        if isinstance(f, Or):
            return any(self._eval(p, assignment) for p in f.parts)
        if isinstance(f, Exists):
            return self._eval_exists(f, assignment)
        if isinstance(f, Forall):
            # forall v: phi == not exists v: not phi, pushed to NNF so the
            # pattern fast path can see through the negation.
            from repro.logic.transform import to_nnf

            rewritten = Exists(f.var, to_nnf(Not(f.body)), f.kind)
            return not self._eval(rewritten, assignment)
        raise EvaluationError(f"cannot evaluate {f!r}")

    def _eval_exists(self, f: Exists, assignment: dict[str, str]) -> bool:
        # Collect a maximal chain of existentials.
        pending: list[str] = []
        body: Formula = f
        while isinstance(body, Exists):
            pending.append(body.var)
            body = body.body
        # Fast path: the body is a conjunction containing an equality
        # "ground = pattern over the pending variables"; enumerate the
        # pattern's segmentations instead of blind domain search.  This is
        # what makes the Proposition 1 / Corollary 1 formulas checkable.
        conjuncts = _flat_conjuncts(body)
        for pivot_index, conjunct in enumerate(conjuncts):
            plan = _match_plan(conjunct, pending, assignment)
            if plan is None:
                continue
            value, segments = plan
            rest = conjuncts[:pivot_index] + conjuncts[pivot_index + 1:]
            sentinel = object()
            saved = {v: assignment.get(v, sentinel) for v in pending}

            def restore():
                for v, old in saved.items():
                    if old is sentinel:
                        assignment.pop(v, None)
                    else:
                        assignment[v] = old

            try:
                for binding in _enumerate_matches(value, segments):
                    assignment.update(binding)
                    missing = [v for v in pending if v not in binding]
                    if missing:
                        if self._eval_nested(missing, rest, assignment):
                            return True
                    elif all(self._eval(r, assignment) for r in rest):
                        return True
                    for v in binding:
                        assignment.pop(v, None)
                return False
            finally:
                restore()
        # Fallback: enumerate the domain variable by variable.
        return self._eval_nested(pending, conjuncts, assignment)

    def _eval_nested(
        self, pending: list[str], conjuncts: list[Formula], assignment: dict[str, str]
    ) -> bool:
        if not pending:
            return all(self._eval(c, assignment) for c in conjuncts)
        var, rest_vars = pending[0], pending[1:]
        sentinel = object()
        saved = assignment.get(var, sentinel)
        try:
            for value in list(self._domain(assignment)):
                assignment[var] = value
                if self._eval_nested(rest_vars, conjuncts, assignment):
                    return True
            return False
        finally:
            if saved is sentinel:
                assignment.pop(var, None)
            else:
                assignment[var] = saved

    def _eval_pred(self, pred: str, values: list[str], param) -> bool:
        if pred == "eq":
            return values[0] == values[1]
        if pred == "prefix":
            return values[1].startswith(values[0])
        if pred == "sprefix":
            return values[1].startswith(values[0]) and values[0] != values[1]
        if pred == "last":
            return strops.last_symbol_is(values[0], param or "")
        if pred == "el":
            return len(values[0]) == len(values[1])
        raise EvaluationError(f"predicate {pred!r} not supported in RC_concat engine")

    def _domain(self, assignment: dict[str, str]) -> Iterator[str]:
        if self.mode == "length":
            yield from self.alphabet.strings_up_to(self.bound)
            return
        seen: set[str] = set()
        for c in self._constants:
            if c not in seen:
                seen.add(c)
                yield c
        if self.database is not None:
            for s in sorted(self.database.adom):
                for f in _factors(s):
                    if f not in seen:
                        seen.add(f)
                        yield f
        for value in sorted(set(assignment.values()), key=len, reverse=True):
            for f in _factors(value):
                if f not in seen:
                    seen.add(f)
                    yield f


def _flat_conjuncts(f: Formula) -> list[Formula]:
    if isinstance(f, And):
        out: list[Formula] = []
        for p in f.parts:
            out.extend(_flat_conjuncts(p))
        return out
    return [f]


def _flatten_concat(term: Term) -> list[Term]:
    if isinstance(term, ConcatTerm):
        return _flatten_concat(term.left) + _flatten_concat(term.right)
    return [term]


def _match_plan(
    conjunct: Formula, pending: list[str], assignment: dict[str, str]
) -> Optional[tuple[str, list]]:
    """If ``conjunct`` is ``eq(ground, pattern over pending vars)``, return
    (ground value, segments); segments are strings or pending var names."""
    if not isinstance(conjunct, Atom) or conjunct.pred != "eq":
        return None
    for ground_side, pattern_side in (
        (conjunct.args[0], conjunct.args[1]),
        (conjunct.args[1], conjunct.args[0]),
    ):
        if not ground_side.variables() <= set(assignment):
            continue
        leaves = _flatten_concat(pattern_side)
        segments: list = []
        used: set[str] = set()
        ok = True
        for leaf in leaves:
            if isinstance(leaf, StrConst):
                segments.append(leaf.value)
            elif hasattr(leaf, "name") and leaf.name in assignment:  # ground Var
                segments.append(assignment[leaf.name])
            elif hasattr(leaf, "name") and leaf.name in pending:
                if leaf.name in used:
                    segments.append(("rep", leaf.name))
                else:
                    used.add(leaf.name)
                    segments.append(("var", leaf.name))
            else:
                ok = False
                break
        if ok and used:
            value = ground_side.evaluate(assignment)
            # Merge adjacent constant segments for faster matching.
            merged: list = []
            for seg in segments:
                if (
                    merged
                    and isinstance(seg, str)
                    and isinstance(merged[-1], str)
                ):
                    merged[-1] += seg
                else:
                    merged.append(seg)
            return value, merged
    return None


def _enumerate_matches(value: str, segments: list) -> Iterator[dict[str, str]]:
    """All ways to split ``value`` along the pattern ``segments``."""

    def rec(pos: int, idx: int, binding: dict[str, str]) -> Iterator[dict[str, str]]:
        if idx == len(segments):
            if pos == len(value):
                yield dict(binding)
            return
        seg = segments[idx]
        if isinstance(seg, str):
            if value.startswith(seg, pos):
                yield from rec(pos + len(seg), idx + 1, binding)
            return
        tag, name = seg
        if tag == "rep":
            # Repeated variable: must equal its earlier binding.
            bound = binding[name]
            if value.startswith(bound, pos):
                yield from rec(pos + len(bound), idx + 1, binding)
            return
        had = name in binding
        for end in range(pos, len(value) + 1):
            binding[name] = value[pos:end]
            yield from rec(end, idx + 1, binding)
        if not had:
            binding.pop(name, None)

    yield from rec(0, 0, {})


def decide_state_safety(formula: Formula, database: Database) -> bool:
    """State-safety for RC_concat — undecidable (Corollary 1).

    Always raises :class:`UndecidableError`.  The reduction witnessing the
    undecidability — PCP instance ``I`` maps to a query that is safe iff
    ``I`` has no solution — is :func:`repro.concat.pcp.safety_reduction`.
    """
    raise UndecidableError(
        "state-safety is undecidable for RC_concat (Corollary 1); "
        "see repro.concat.pcp.safety_reduction for the PCP reduction, "
        "or use BoundedConcatEngine for bounded semi-decision"
    )
