"""Safety analysis: state-safety, range restriction, CQ safety, enumeration.

The paper's Section 6 (and its Section 7 extensions), executable:

* :func:`is_safe_on` / :func:`analyze_state_safety` — Proposition 7;
* :func:`range_restrict` / :class:`RangeRestrictedQuery` — Theorems 3/7;
* :func:`cq_is_safe` — Theorem 5 / Corollaries 6/8;
* :func:`enumerate_safe_queries` — Corollaries 5/9 (effective syntax);
* :func:`finiteness_formula` — finiteness definable with parameters in
  S_len (and, per Proposition 6, *not* in S — demonstrated in the EF-game
  tests);
* :func:`range_bounded_variables` — the semantic domain-independence
  certificate consumed by the RANF translation
  (:mod:`repro.algebra.ranf`, Raszyk et al. arXiv 2210.09964).
"""

from repro.safety.bounded import (
    MAX_PATTERN_WORDS,
    BoundedReport,
    range_bounded_variables,
)
from repro.safety.cq_safety import (
    ConjunctiveQuery,
    cq_is_safe,
    finiteness_formula,
    union_is_safe,
)
from repro.safety.effective_syntax import enumerate_safe_queries
from repro.safety.range_restriction import (
    RangeRestrictedQuery,
    output_bound_relation,
    range_restrict,
)
from repro.safety.state_safety import SafetyReport, analyze_state_safety, is_safe_on

__all__ = [
    "MAX_PATTERN_WORDS",
    "BoundedReport",
    "ConjunctiveQuery",
    "RangeRestrictedQuery",
    "SafetyReport",
    "analyze_state_safety",
    "cq_is_safe",
    "enumerate_safe_queries",
    "finiteness_formula",
    "is_safe_on",
    "output_bound_relation",
    "range_bounded_variables",
    "range_restrict",
    "union_is_safe",
]
