"""Range-bounded variable analysis: the domain-independence certificate
behind the RANF translation (:mod:`repro.algebra.ranf`).

The algebra engine's old gate demanded that every free variable be
*anchored* — a bare argument of a positive relation atom, hence taking
active-domain values outright.  That rejects plenty of formulas whose
answers are nonetheless finite, e.g. ``eq(x, y) & R(y)`` (``x`` copies an
anchored value) or ``matches(x, "aa|ab")`` (``x`` ranges over a finite
pattern language).  Following Raszyk et al. (arXiv 2210.09964), the RANF
translation only needs a *semantic bound*: a certificate that every
satisfying value of a variable lies inside the data-independent ball
``gamma_0`` — the slack-0 restriction bound of
:func:`repro.algebra.compile.bound_plan` (prefix closure of
``adom ∪ {ε} ∪ constants``, plus the length ball for S_len).

:func:`range_bounded_variables` computes the certified variable set by a
fixpoint over directional implications read off the atoms:

* a bare variable argument of a positive relation atom is bounded
  (its values are in ``adom``);
* ``eq(a, b)`` bounds each side from the other; a constant side bounds
  the variable side outright;
* ``prefix(a, b)`` / ``sprefix(a, b)`` / ``ext1(a, b)`` /
  ``psuffix(a, b)`` / ``graph_add_last(a, b)`` bound ``a`` from ``b``
  (``a`` is a prefix of ``b``, and ``gamma_0`` is prefix-closed);
* on length-ball structures (S_len), ``el`` / ``len_le`` / ``len_lt``
  bound the shorter side from the longer (``gamma_0`` there is closed
  under taking shorter strings);
* ``matches(x, p)`` with a *finite* pattern language of at most
  :data:`MAX_PATTERN_WORDS` words bounds ``x`` unconditionally — the
  words themselves are reported as ``extra_constants`` so the caller can
  fold them into the bound;
* conjunction joins certificates and runs the implication fixpoint,
  disjunction intersects, negation certifies nothing, quantifiers drop
  their own variable (``forall adom`` is vacuously true on an empty
  domain, so it certifies nothing for its body's other variables).

Soundness invariant (slack-independent: none of the rules mention
quantifier domains): if an assignment ``ν`` satisfies the formula under
the restricted-quantifier semantics and ``v`` is in the certified set,
then ``ν[v]`` lies in ``gamma_0`` built over the formula's constants
plus ``extra_constants``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
)
from repro.logic.terms import StrConst, Var
from repro.logic.transform import to_nnf

#: Enumerating a finite ``matches`` pattern language stops paying off past
#: this many words; larger (or infinite) languages leave the variable
#: uncertified and the formula falls back to the automata engine.
MAX_PATTERN_WORDS = 64

#: ``pred(a, b)`` implying "``a`` is a prefix of ``b``" — valid sources of
#: a prefix-closure bound in every structure.
_PREFIX_PREDS = frozenset(["prefix", "sprefix", "ext1", "psuffix", "graph_add_last"])

#: ``pred(a, b)`` implying ``|a| <= |b|`` — a bound only on structures
#: whose restriction ball is length-closed (S_len's down-ball).
_LENGTH_PREDS = frozenset(["el", "len_le", "len_lt"])


@dataclass(frozen=True)
class BoundedReport:
    """The certificate: which variables are range-bounded, and which
    pattern-language words must join the bound's constant set."""

    bounded: frozenset[str]
    extra_constants: frozenset[str]

    def __or__(self, other: "BoundedReport") -> "BoundedReport":
        return BoundedReport(
            self.bounded | other.bounded,
            self.extra_constants | other.extra_constants,
        )


_EMPTY = BoundedReport(frozenset(), frozenset())


def range_bounded_variables(formula: Formula, structure) -> BoundedReport:
    """Certified range-bounded free variables of ``formula`` over
    ``structure`` (see the module docstring for the soundness claim)."""
    return _rb(to_nnf(formula), structure)


def _finite_pattern_words(structure, param: str) -> tuple[str, ...] | None:
    """The full (small, finite) language of a pattern, or ``None``."""
    try:
        dfa = structure.pattern_dfa(param or "")
    except Exception:
        return None
    if not dfa.is_finite_language():
        return None
    count = dfa.count_words()
    if count is None or count > MAX_PATTERN_WORDS:
        return None
    return tuple(dfa.iter_strings())


def _atom_facts(atom: Atom, structure):
    """(unconditionally bounded vars, implications, extra constants) of a
    positive interpreted atom.  Implications are ``(src, dst)`` pairs:
    once ``src`` is known bounded, ``dst`` is too."""
    bounded: set[str] = set()
    implications: list[tuple[str, str]] = []
    extras: set[str] = set()
    args = atom.args

    def var(i) -> str | None:
        return args[i].name if isinstance(args[i], Var) else None

    def const(i) -> str | None:
        return args[i].value if isinstance(args[i], StrConst) else None

    if atom.pred == "eq" and len(args) == 2:
        a, b = var(0), var(1)
        if a and b:
            implications += [(a, b), (b, a)]
        elif a and const(1) is not None:
            bounded.add(a)
            extras.add(const(1))
        elif b and const(0) is not None:
            bounded.add(b)
            extras.add(const(0))
    elif atom.pred in _PREFIX_PREDS and len(args) == 2:
        a, b = var(0), var(1)
        if a and b:
            implications.append((b, a))
        elif a and const(1) is not None:
            bounded.add(a)
            extras.add(const(1))
    elif atom.pred in _LENGTH_PREDS and len(args) == 2:
        if structure.restricted_kind is QuantKind.LENGTH:
            a, b = var(0), var(1)
            if a and b:
                implications.append((b, a))
                if atom.pred == "el":
                    implications.append((a, b))
            elif a and const(1) is not None:
                bounded.add(a)
                extras.add(const(1))
            elif atom.pred == "el" and (v := var(1)) and const(0) is not None:
                bounded.add(v)
                extras.add(const(0))
    elif atom.pred == "matches" and len(args) == 1 and (x := var(0)):
        words = _finite_pattern_words(structure, atom.param or "")
        if words is not None:
            bounded.add(x)
            extras.update(words)
    elif atom.pred == "graph_const" and len(args) == 1 and (x := var(0)):
        bounded.add(x)
        extras.add(atom.param or "")
    return bounded, implications, extras


def _rb(nnf: Formula, structure) -> BoundedReport:
    if isinstance(nnf, RelAtom):
        return BoundedReport(
            frozenset(t.name for t in nnf.args if isinstance(t, Var)),
            frozenset(),
        )
    if isinstance(nnf, Atom):
        bounded, _implications, extras = _atom_facts(nnf, structure)
        return BoundedReport(frozenset(bounded), frozenset(extras))
    if isinstance(nnf, And):
        bounded: set[str] = set()
        implications: list[tuple[str, str]] = []
        extras: set[str] = set()
        for part in nnf.parts:
            if isinstance(part, Atom):
                b, imp, ex = _atom_facts(part, structure)
                bounded |= b
                implications += imp
                extras |= ex
            else:
                report = _rb(part, structure)
                bounded |= report.bounded
                extras |= report.extra_constants
        changed = True
        while changed:
            changed = False
            for src, dst in implications:
                if src in bounded and dst not in bounded:
                    bounded.add(dst)
                    changed = True
        return BoundedReport(frozenset(bounded), frozenset(extras))
    if isinstance(nnf, Or):
        parts = [_rb(p, structure) for p in nnf.parts]
        bounded = parts[0].bounded
        extras = frozenset()
        for p in parts:
            bounded &= p.bounded
            extras |= p.extra_constants
        return BoundedReport(bounded, extras)
    if isinstance(nnf, Exists):
        report = _rb(nnf.body, structure)
        return BoundedReport(report.bounded - {nnf.var}, report.extra_constants)
    if isinstance(nnf, Forall):
        # An ADOM domain can be empty, making the quantifier vacuously
        # true without the body ever holding — its certificate transfers
        # nothing.  PREFIX / LENGTH / NATURAL domains always contain ε.
        if nnf.kind is QuantKind.ADOM:
            return _EMPTY
        report = _rb(nnf.body, structure)
        return BoundedReport(report.bounded - {nnf.var}, report.extra_constants)
    return _EMPTY
