"""Deciding (query) safety of conjunctive queries (Theorem 5, Corollary 6).

Query safety — "is ``phi(D)`` finite for *every* database ``D``?" — is
undecidable for full relational calculus, but the paper shows it is
decidable for conjunctive queries (and their Boolean combinations) over S
and S_len, via two ingredients it establishes for S_len:

1. the first-order theory of S_len is decidable (here: the automata
   engine over the empty database decides any M-sentence);
2. finiteness is definable with parameters: for ``psi(z, y)`` the formula

       psi_fin(y) = exists u forall z ( psi(z, y) -> /\\ len_le(z_i, u) )

   holds exactly when ``{z | psi(z, y)}`` is finite.

For a conjunctive query ``phi(x) = exists y /\\ S_i(u_i) and gamma(x, y)``
(:class:`ConjunctiveQuery`), let ``A`` be the variables *anchored* in some
relation atom.  Over any database the anchored variables take finitely
many values, and every combination of values is realizable by some
database; hence

    phi is safe for all D
        iff  M |= forall A . Fin_{x\\A} ( exists (y\\A) . gamma )

which is an M-sentence, decided exactly.  Since every operation of S,
S_left and S_reg is expressible over S_len, the decision runs over S_len
(Corollary 8's argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.database.instance import Database
from repro.errors import SignatureError
from repro.eval.automata_engine import AutomataEngine
from repro.logic.dsl import and_, len_le
from repro.logic.formulas import (
    And,
    Exists,
    Forall,
    Formula,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import Var
from repro.structures.base import StringStructure
from repro.structures.catalog import S_len


@dataclass(frozen=True)
class ConjunctiveQuery:
    """``phi(head) :- S_1(u_1), ..., S_k(u_k), gamma(head, exist_vars)``.

    ``condition`` is a pure M-formula (no database relations); every
    variable of ``condition`` must be a head variable, an atom variable,
    or listed in ``existential_vars``.
    """

    head: tuple[str, ...]
    atoms: tuple[RelAtom, ...]
    condition: Formula
    existential_vars: tuple[str, ...] = ()

    def __post_init__(self):
        if self.condition.relation_names():
            raise SignatureError("the condition of a CQ must be database-free")
        for atom in self.atoms:
            for t in atom.args:
                if not isinstance(t, Var):
                    raise SignatureError("CQ atoms must have variable arguments")

    def anchored_variables(self) -> frozenset[str]:
        """Variables occurring in some relation atom."""
        out: set[str] = set()
        for atom in self.atoms:
            out |= atom.free_variables()
        return frozenset(out)

    def all_variables(self) -> frozenset[str]:
        return (
            frozenset(self.head)
            | frozenset(self.existential_vars)
            | self.anchored_variables()
            | self.condition.free_variables()
        )

    def to_formula(self) -> Formula:
        """The RC(M) formula ``exists y-bar: atoms and condition``."""
        body_parts: list[Formula] = list(self.atoms)
        if not isinstance(self.condition, TrueF):
            body_parts.append(self.condition)
        body = and_(*body_parts) if body_parts else TrueF()
        bound = [v for v in self.all_variables() - set(self.head)]
        for v in sorted(bound, reverse=True):
            body = Exists(v, body, QuantKind.NATURAL)
        return body

    def evaluate(self, structure: StringStructure, database: Database):
        """Run the CQ on a database (automata engine, exact)."""
        return AutomataEngine(structure, database).run(self.to_formula())


def finiteness_formula(psi: Formula, bound_vars: Sequence[str]) -> Formula:
    """The paper's ``psi_fin``: parameters are ``psi``'s other free vars.

    ``M |= psi_fin(y)`` iff ``{z-bar | M |= psi(z-bar, y)}`` is finite,
    because a set of string tuples is finite iff componentwise
    length-bounded — expressed with ``len_le`` and one witness ``u``.
    """
    bound_vars = list(bound_vars)
    used = psi.free_variables() | set(bound_vars)
    u = "u"
    while u in used:
        u += "_"
    guards = and_(*[len_le(Var(z), Var(u)) for z in bound_vars])
    inner: Formula = psi.implies(guards)
    for z in sorted(bound_vars, reverse=True):
        inner = Forall(z, inner, QuantKind.NATURAL)
    return Exists(u, inner, QuantKind.NATURAL)


def cq_is_safe(cq: ConjunctiveQuery, structure: StringStructure) -> bool:
    """Decide query safety (over all databases) of a conjunctive query.

    Decided as an S_len sentence regardless of ``structure`` (all four
    tame structures embed in S_len), evaluated exactly by the automata
    engine over the empty database.
    """
    structure.check_formula(cq.condition)
    anchored = cq.anchored_variables()
    floating_head = sorted(set(cq.head) - anchored)
    if not floating_head:
        return True  # every head variable is anchored in a finite relation
    floating_exist = sorted(
        (set(cq.existential_vars) | cq.condition.free_variables())
        - anchored
        - set(cq.head)
    )
    # exists (floating existentials): gamma
    psi: Formula = cq.condition
    for v in reversed(floating_exist):
        psi = Exists(v, psi, QuantKind.NATURAL)
    fin = finiteness_formula(psi, floating_head)
    sentence: Formula = fin
    for v in sorted(anchored, reverse=True):
        sentence = Forall(v, sentence, QuantKind.NATURAL)
    ambient = S_len(structure.alphabet)
    empty_db = Database(structure.alphabet, {})
    return AutomataEngine(ambient, empty_db).decide(sentence, check_signature=False)


def union_is_safe(cqs: Sequence[ConjunctiveQuery], structure: StringStructure) -> bool:
    """A union of CQs is safe iff every disjunct is safe."""
    return all(cq_is_safe(cq, structure) for cq in cqs)
