"""Effective syntax for safe queries (Corollary 5/9).

The paper shows that the safe fragments of RC(S), RC(S_len), RC(S_left)
and RC(S_reg) have *effective syntax*: a recursively enumerable family of
safe queries covering every safe query up to equivalence.  The family is
the range-restricted queries ``(gamma_k, phi)`` with ``phi`` ranging over
all formulas and ``gamma_k`` over the recursive bound family Gamma.

:func:`enumerate_safe_queries` materializes a prefix of that enumeration:
it interleaves a systematic enumeration of formulas (by size) with the
slack parameter ``k``, yielding
:class:`~repro.safety.range_restriction.RangeRestrictedQuery` objects —
each of which is safe *by construction* on every database.

(Contrast Corollary 1: no such enumeration can exist for RC_concat.)
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from repro.database.schema import Schema
from repro.logic.dsl import (
    and_,
    el,
    eq,
    exists_adom,
    last,
    not_,
    or_,
    prefix,
    rel,
    sprefix,
)
from repro.logic.formulas import Formula, QuantKind
from repro.safety.range_restriction import RangeRestrictedQuery, range_restrict
from repro.structures.base import StringStructure


def _formula_stream(structure: StringStructure, schema: Schema) -> Iterator[Formula]:
    """A systematic (infinite) stream of RC(M) formulas with free var x.

    Not every formula — an illustrative recursively enumerable family
    rich enough for the tests: relation atoms, interpreted atoms over x/y,
    closed under negation, conjunction, disjunction and active-domain
    quantification, enumerated by size.
    """
    x, y = "x", "y"
    base: list[Formula] = []
    for name in schema.relation_names:
        if schema.arity(name) == 1:
            base.append(rel(name, x))
        elif schema.arity(name) == 2:
            base.append(exists_adom(y, rel(name, x, y)))
            base.append(exists_adom(y, rel(name, y, x)))
    for a in structure.alphabet.symbols:
        base.append(last(x, a))
    base.append(exists_adom(y, sprefix(x, y)))
    base.append(exists_adom(y, prefix(x, y)))
    if structure.allows_predicate("el"):
        base.append(exists_adom(y, el(x, y)))
    level = list(base)
    seen: set[str] = set()
    while True:
        next_level: list[Formula] = []
        for f in level:
            key = str(f)
            if key in seen:
                continue
            seen.add(key)
            yield f
            next_level.append(not_(f))
        for f, g in itertools.combinations(level, 2):
            next_level.append(and_(f, g))
            next_level.append(or_(f, g))
        level = next_level
        if not level:  # pragma: no cover - the stream never dries up
            return


def enumerate_safe_queries(
    structure: StringStructure,
    schema: Schema,
    limit: int,
    max_slack: int = 2,
) -> Iterator[RangeRestrictedQuery]:
    """Yield ``limit`` safe queries from the effective enumeration.

    Interleaves formulas with slack values; every yielded query is a
    range-restricted query and hence safe on every database.
    """
    produced = 0
    stream = _formula_stream(structure, schema)
    for formula in stream:
        for slack in range(max_slack + 1):
            if produced >= limit:
                return
            yield range_restrict(formula, structure, slack=slack)
            produced += 1
