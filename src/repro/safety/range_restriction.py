"""Range-restricted queries (paper Section 6.1, Theorems 3 and 7).

A range-restricted query is a pair ``(gamma, phi)`` of an *algebraic*
bound formula and an arbitrary query; its semantics is ``Q(D) =
gamma(adom(D)) intersect phi(D)`` — finite by construction.  The paper's
theorems produce, for every query ``phi``, a ``gamma`` from a recursive
family such that ``(gamma, phi)`` agrees with ``phi`` on every database
where ``phi`` is safe.

The recursive families here are exactly the paper's:

* for S (and S_reg): ``gamma_k(x, y)`` = "x is a prefix of a string
  ``y . sigma`` with ``|sigma| <= k``" (Lemma 1's bound);
* for S_left: two-sided version (Theorem 7);
* for S_len: ``gamma_k(x, y)`` = "``|x| <= |y| + k``" (Lemma 2's bound).

The witness distance ``d(s, prefix(D))`` / ``d(s, down(D))`` driving the
lemmas is computable via :func:`repro.strings.d_distance`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automatic.relation import RelationAutomaton
from repro.database.instance import Database
from repro.errors import UnsafeQueryError
from repro.eval.automata_engine import AutomataEngine
from repro.eval.collapse import default_slack
from repro.eval.domains import extension_set_relation, length_bound_set_relation
from repro.logic.formulas import Formula, QuantKind
from repro.structures.base import StringStructure


def output_bound_relation(
    structure: StringStructure, database: Database, slack: int
) -> RelationAutomaton:
    """The unary set ``gamma_slack(adom(D))`` as an automaton.

    * PREFIX-collapsing structures (S, S_left, S_reg): strings within a
      ``slack``-symbol extension of ``prefix(adom)`` — for S_left the
      extension-set construction covers right extensions; left extensions
      of bounded depth are added explicitly;
    * S_len: all strings of length at most ``max |adom| + slack``.
    """
    alphabet = structure.alphabet
    adom = sorted(database.adom)
    if structure.restricted_kind is QuantKind.LENGTH:
        max_len = max((len(s) for s in adom), default=0)
        return length_bound_set_relation(alphabet, max_len + slack)
    base: set[str] = set(adom)
    if structure.name == "S_left":
        # Close the base under <= slack left-prepends so the extension set
        # covers strings like a.x for x in adom (Theorem 7's wider Gamma).
        frontier = set(base)
        for _ in range(slack):
            frontier = {a + s for a in alphabet.symbols for s in frontier}
            base |= frontier
    return extension_set_relation(alphabet, sorted(base), slack)


@dataclass(frozen=True)
class RangeRestrictedQuery:
    """The pair ``(gamma, phi)`` with executable semantics.

    ``slack`` identifies ``gamma`` within the recursive family Gamma.
    """

    formula: Formula
    structure: StringStructure
    slack: int

    def evaluate(self, database: Database) -> frozenset[tuple[str, ...]]:
        """``gamma(adom(D)) intersect phi(D)`` — always finite."""
        result = AutomataEngine(self.structure, database).run(self.formula)
        bound = output_bound_relation(self.structure, database, self.slack)
        relation = result.relation
        for track in range(relation.arity):
            aligned = bound
            for pos in range(relation.arity):
                if pos < track:
                    aligned = aligned.cylindrify(0)
                elif pos > track:
                    aligned = aligned.cylindrify(aligned.arity)
            relation = relation.intersection(aligned)
        if not relation.is_finite():  # pragma: no cover - bound guarantees finite
            raise UnsafeQueryError("range-restricted output not finite (bug)")
        return relation.set_of_tuples()

    def agrees_with_original_on(self, database: Database) -> bool:
        """Check the Theorem 3/7 guarantee on one database.

        True when either the original query is unsafe on ``database`` (the
        guarantee only speaks about safe instances) or the restricted
        output equals the original output.
        """
        result = AutomataEngine(self.structure, database).run(self.formula)
        if not result.is_finite():
            return True
        return self.evaluate(database) == result.as_set()


def range_restrict(
    formula: Formula,
    structure: StringStructure,
    slack: int | None = None,
) -> RangeRestrictedQuery:
    """Theorem 3/7: pick ``gamma`` (i.e. the slack ``k``) for ``phi``.

    The slack is derived from the quantifier rank exactly as in
    :func:`repro.eval.collapse.default_slack`; pass ``slack`` to override.
    """
    structure.check_formula(formula)
    if slack is None:
        slack = default_slack(formula)
    return RangeRestrictedQuery(formula, structure, slack)
