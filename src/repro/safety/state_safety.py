"""State-safety: is ``phi(D)`` finite?  (Proposition 7 of the paper.)

Decidable for RC(S), RC(S_left), RC(S_reg), RC(S_len): compile the query
and the database into a convolution automaton and test language finiteness
(a trimmed DFA has a finite language iff its graph is acyclic).  The same
call also yields the exact output — finite outputs can be materialized,
infinite ones remain available as a regular set.

Contrast Corollary 1: for RC_concat state-safety is *undecidable* (see
:mod:`repro.concat`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.database.instance import Database
from repro.eval.automata_engine import AutomataEngine
from repro.eval.result import QueryResult
from repro.logic.formulas import Formula
from repro.structures.base import StringStructure


@dataclass(frozen=True)
class SafetyReport:
    """Outcome of a state-safety check."""

    safe: bool
    result: QueryResult

    @property
    def output_size(self) -> int | None:
        """Number of output tuples when finite, else ``None``."""
        return self.result.count() if self.safe else None


def analyze_state_safety(
    formula: Formula, structure: StringStructure, database: Database
) -> SafetyReport:
    """Decide whether ``formula`` is safe on ``database`` (Proposition 7).

    Returns the full report; use :func:`is_safe_on` for just the bit.
    """
    result = AutomataEngine(structure, database).run(formula)
    return SafetyReport(result.is_finite(), result)


def is_safe_on(
    formula: Formula, structure: StringStructure, database: Database
) -> bool:
    """True iff the query's output on this database is finite."""
    return analyze_state_safety(formula, structure, database).safe
