"""Database instances over ``Sigma*``: finite relations of strings.

Implements the paper's Section 2 notions: active domain ``adom(D)``, the
**width** of a database (the largest subset of the active domain pairwise
comparable by prefix — Proposition 5's parameter), and the width-1
re-encoding every database admits.
"""

from __future__ import annotations

import functools
import math
from collections.abc import Iterable, Mapping, Sequence

from repro.automatic.relation import RelationAutomaton
from repro.database.schema import Schema
from repro.errors import ArityError
from repro.strings import is_strict_prefix, prefix_closure
from repro.strings.alphabet import Alphabet


class Database:
    """An instance of a :class:`Schema` over strings of a fixed alphabet.

    Relations are immutable frozensets of string tuples.

    Examples
    --------
    >>> from repro.strings import BINARY
    >>> db = Database(BINARY, {"R": {("01",), ("0110",)}})
    >>> sorted(db.adom)
    ['01', '0110']
    """

    __slots__ = (
        "alphabet",
        "schema",
        "_relations",
        "_adom",
        "_fingerprint",
        "_prefix_closure",
        "_prefix_closure_size",
    )

    def __init__(
        self,
        alphabet: Alphabet,
        relations: Mapping[str, Iterable[Sequence[str]]],
        schema: Schema | None = None,
    ):
        self.alphabet = alphabet
        # Lazily filled by repro.engine.cache.database_fingerprint (or
        # seeded with a chained version fingerprint by repro.delta).
        self._fingerprint: str | None = None
        rels: dict[str, frozenset[tuple[str, ...]]] = {}
        arities: dict[str, int] = {}
        for name, tuples in relations.items():
            normalized = set()
            for tup in tuples:
                if isinstance(tup, str):
                    tup = (tup,)
                tup = tuple(tup)
                for s in tup:
                    alphabet.check_string(s)
                normalized.add(tup)
            if normalized:
                lengths = {len(t) for t in normalized}
                if len(lengths) != 1:
                    raise ArityError(f"relation {name!r} has mixed arities {lengths}")
                arities[name] = lengths.pop()
            rels[name] = frozenset(normalized)
        if schema is None:
            # Infer arity 1 for empty relations.
            for name in rels:
                arities.setdefault(name, 1)
            schema = Schema(arities)
        else:
            for name, tuples in rels.items():
                if name not in schema:
                    raise KeyError(f"relation {name!r} not in schema {schema}")
                if tuples and arities[name] != schema.arity(name):
                    raise ArityError(
                        f"relation {name!r} has arity {arities[name]}, "
                        f"schema says {schema.arity(name)}"
                    )
            for name in schema.relation_names:
                rels.setdefault(name, frozenset())
        self.schema = schema
        self._relations = rels
        adom: set[str] = set()
        for tuples in rels.values():
            for tup in tuples:
                adom.update(tup)
        self._adom = frozenset(adom)
        self._prefix_closure: frozenset[str] | None = None
        self._prefix_closure_size: int | None = None

    # ------------------------------------------------------------- accessors

    def relation(self, name: str) -> frozenset[tuple[str, ...]]:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"relation {name!r} not in database") from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return self.schema.relation_names

    @property
    def adom(self) -> frozenset[str]:
        """The active domain: every string appearing in some tuple."""
        return self._adom

    def adom_prefix_closure(self) -> frozenset[str]:
        """``prefix(adom(D))`` — the domain of prefix-restricted quantifiers.

        Memoized per instance: snapshots are immutable, and both the
        gamma expansions and the planner's cost estimates ask repeatedly.
        """
        if self._prefix_closure is None:
            self._prefix_closure = prefix_closure(self._adom)
            self._prefix_closure_size = len(self._prefix_closure)
        return self._prefix_closure

    def adom_prefix_closure_size(self) -> int:
        """``|prefix(adom(D))|`` without materializing the closure.

        The planner's cost model only needs the cardinality; counting
        trie nodes over the sorted active domain (one new node per
        character past the longest-common-prefix with the previous
        string) avoids constructing and hashing every prefix string.
        """
        if self._prefix_closure_size is None:
            if not self._adom:
                self._prefix_closure_size = 0
                return 0
            count = 1  # the empty string
            prev = ""
            for s in sorted(self._adom):
                lcp = 0
                limit = min(len(prev), len(s))
                while lcp < limit and prev[lcp] == s[lcp]:
                    lcp += 1
                count += len(s) - lcp
                prev = s
            self._prefix_closure_size = count
        return self._prefix_closure_size

    @property
    def max_string_length(self) -> int:
        """Length of the longest active-domain string (-1 if empty)."""
        return max((len(s) for s in self._adom), default=-1)

    @property
    def size(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(t) for t in self._relations.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return (
            self.alphabet == other.alphabet
            and self.schema == other.schema
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (self.alphabet, self.schema, tuple(sorted(self._relations.items())))
        )

    def __repr__(self) -> str:
        sizes = ", ".join(f"{n}:{len(t)}" for n, t in sorted(self._relations.items()))
        return f"Database({sizes}; |adom|={len(self._adom)})"

    # ------------------------------------------------------------- modifiers

    def with_relation(self, name: str, tuples: Iterable[Sequence[str]]) -> "Database":
        """A new database with one relation replaced/added (schema re-inferred)."""
        rels: dict[str, Iterable[Sequence[str]]] = dict(self._relations)
        rels[name] = [tuple(t) for t in tuples]
        return Database(self.alphabet, rels)

    @classmethod
    def _evolved(
        cls,
        alphabet: Alphabet,
        schema: Schema,
        relations: dict[str, frozenset[tuple[str, ...]]],
        adom: frozenset[str],
        fingerprint: str | None = None,
    ) -> "Database":
        """Trusted constructor for the delta layer (:mod:`repro.delta`).

        Skips per-tuple validation and the O(database) active-domain
        recomputation — the caller passes pre-validated relation
        frozensets (unchanged ones shared with the parent snapshot) and
        an incrementally maintained ``adom``, which is what makes
        snapshot evolution O(|delta|) instead of O(|database|).
        ``fingerprint`` seeds the cache-key memo with the version-chain
        fingerprint so no layer ever rehashes the full instance.
        """
        self = cls.__new__(cls)
        self.alphabet = alphabet
        self.schema = schema
        self._relations = relations
        self._adom = adom
        self._fingerprint = fingerprint
        self._prefix_closure = None
        self._prefix_closure_size = None
        return self

    # ---------------------------------------------------------------- width

    def width(self) -> int:
        """The paper's width: the longest prefix-chain inside ``adom(D)``.

        Computed by dynamic programming over strings ordered by length.
        """
        if not self._adom:
            return 0
        chain: dict[str, int] = {}
        for s in sorted(self._adom, key=len):
            best = 0
            for p in chain:  # all strictly shorter processed strings
                if is_strict_prefix(p, s) and chain[p] > best:
                    best = chain[p]
            chain[s] = best + 1
        return max(chain.values())

    def width_one_encoding(self) -> tuple["Database", dict[str, str]]:
        """Re-encode onto a prefix-antichain (the paper's width-1 transform).

        Every database is isomorphic w.r.t. the SC-predicates to a width-1
        database (Section 5.2).  Strings are re-coded symbol-by-symbol in a
        self-delimiting binary code over the first two alphabet symbols:
        each symbol becomes its index in binary with every bit followed by
        ``0``, and the code ends with ``11`` — no code word is a prefix of
        another.

        Returns the re-encoded database and the encoding map.
        """
        if len(self.alphabet) < 2:
            raise ValueError("width-1 encoding needs at least two alphabet symbols")
        zero, one = self.alphabet.symbols[0], self.alphabet.symbols[1]
        bits_per_symbol = max(1, math.ceil(math.log2(len(self.alphabet))))

        @functools.lru_cache(maxsize=None)
        def encode(s: str) -> str:
            out = []
            for ch in s:
                index = self.alphabet.index(ch)
                for bit_pos in range(bits_per_symbol - 1, -1, -1):
                    bit = (index >> bit_pos) & 1
                    out.append(one if bit else zero)
                    out.append(zero)
            out.append(one)
            out.append(one)
            return "".join(out)

        mapping = {s: encode(s) for s in self._adom}
        rels = {
            name: [tuple(mapping[s] for s in tup) for tup in tuples]
            for name, tuples in self._relations.items()
        }
        return Database(self.alphabet, rels, schema=self.schema), mapping

    # ------------------------------------------------------------- automata

    def relation_automaton(self, name: str) -> RelationAutomaton:
        """The finite relation as a convolution automaton (for the engine)."""
        tuples = self.relation(name)
        arity = self.schema.arity(name)
        return RelationAutomaton.from_tuples(self.alphabet, arity, tuples)
