"""Database layer: schemas, instances, active domain, width, generators."""

from repro.database.generators import (
    antichain_vertex,
    complete_graph,
    cycle_graph,
    graph_database,
    random_database,
    random_graph,
    unary_database,
)
from repro.database.instance import Database
from repro.database.schema import Schema

__all__ = [
    "Database",
    "Schema",
    "antichain_vertex",
    "complete_graph",
    "cycle_graph",
    "graph_database",
    "random_database",
    "random_graph",
    "unary_database",
]
