"""Deterministic workload generators for tests, examples and benchmarks.

All generators take an explicit ``seed`` so benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.database.instance import Database
from repro.strings.alphabet import Alphabet


def random_string(rng: random.Random, alphabet: Alphabet, max_len: int) -> str:
    length = rng.randint(0, max_len)
    return "".join(rng.choice(alphabet.symbols) for _ in range(length))


def random_database(
    alphabet: Alphabet,
    schema_arities: dict[str, int],
    tuples_per_relation: int,
    max_len: int = 8,
    seed: int = 0,
) -> Database:
    """A random database with the given shape."""
    rng = random.Random(seed)
    rels = {}
    for name, arity in schema_arities.items():
        tuples = set()
        while len(tuples) < tuples_per_relation:
            tuples.add(tuple(random_string(rng, alphabet, max_len) for _ in range(arity)))
        rels[name] = tuples
    return Database(alphabet, rels)


def unary_database(
    alphabet: Alphabet,
    n_strings: int,
    max_len: int = 10,
    seed: int = 0,
    name: str = "R",
) -> Database:
    """A unary database (Proposition 3's linear-time evaluation setting)."""
    rng = random.Random(seed)
    strings = set()
    while len(strings) < n_strings:
        strings.add(random_string(rng, alphabet, max_len))
    return Database(alphabet, {name: {(s,) for s in strings}})


def antichain_vertex(i: int, alphabet: Alphabet) -> str:
    """The ``i``-th vertex string ``1^i 0``: a prefix-antichain of distinct lengths.

    Used by the Proposition 5 pipeline: distinct lengths let a subset of
    vertices be coded by a single string's symbols via the ``el`` predicate.
    """
    one, zero = alphabet.symbols[1], alphabet.symbols[0]
    return one * i + zero


def graph_database(
    n_vertices: int,
    edges: Sequence[tuple[int, int]],
    alphabet: Alphabet,
) -> Database:
    """Encode a graph as a width-1 string database (vertices ``1^i 0``).

    Relations: unary ``V`` (vertices) and binary ``E`` (edges, symmetric
    closure is the caller's choice).
    """
    if len(alphabet) < 2:
        raise ValueError("graph encoding needs at least two alphabet symbols")
    vstr = [antichain_vertex(i, alphabet) for i in range(n_vertices)]
    v_rel = {(v,) for v in vstr}
    e_rel = {(vstr[u], vstr[w]) for (u, w) in edges}
    return Database(alphabet, {"V": v_rel, "E": e_rel})


def random_graph(n_vertices: int, edge_prob: float, seed: int = 0) -> list[tuple[int, int]]:
    """Random undirected graph as a symmetric edge list."""
    rng = random.Random(seed)
    edges = []
    for u in range(n_vertices):
        for w in range(u + 1, n_vertices):
            if rng.random() < edge_prob:
                edges.append((u, w))
                edges.append((w, u))
    return edges


def cycle_graph(n_vertices: int) -> list[tuple[int, int]]:
    """The n-cycle (3-colorable iff n is not an odd cycle > 3 ... i.e. even or n=3)."""
    edges = []
    for u in range(n_vertices):
        w = (u + 1) % n_vertices
        edges.append((u, w))
        edges.append((w, u))
    return edges


def complete_graph(n_vertices: int) -> list[tuple[int, int]]:
    """K_n (3-colorable iff n <= 3)."""
    edges = []
    for u in range(n_vertices):
        for w in range(n_vertices):
            if u != w:
                edges.append((u, w))
    return edges
