"""Database schemas: named relations with fixed arities (paper Section 2)."""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ArityError


class Schema:
    """A collection of relation names with positive arities.

    Examples
    --------
    >>> sc = Schema({"R": 1, "E": 2})
    >>> sc.arity("E")
    2
    """

    __slots__ = ("_arities",)

    def __init__(self, arities: Mapping[str, int]):
        for name, arity in arities.items():
            if not name or not name[0].isalpha():
                raise ValueError(f"bad relation name {name!r}")
            if arity <= 0:
                raise ArityError(f"relation {name!r} must have positive arity, got {arity}")
        self._arities = dict(arities)

    def arity(self, name: str) -> int:
        try:
            return self._arities[name]
        except KeyError:
            raise KeyError(f"relation {name!r} not in schema {self}") from None

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._arities))

    def __contains__(self, name: object) -> bool:
        return name in self._arities

    def is_unary(self) -> bool:
        """True iff every relation is unary (Proposition 3's setting)."""
        return all(a == 1 for a in self._arities.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._arities == other._arities

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._arities.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}/{a}" for n, a in sorted(self._arities.items()))
        return f"Schema({inner})"
