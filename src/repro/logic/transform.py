"""Formula transformations.

* :func:`to_nnf` — negation normal form;
* :func:`flatten_terms` — replace function terms inside atoms by fresh,
  existentially quantified variables constrained through *graph atoms*
  (``graph_add_last``/``graph_add_first``/``graph_trim_first``/``graph_lcp``)
  — the shape the automata engine consumes, since graphs of the paper's
  functions are synchronized-rational while general term nesting is not
  directly an automaton;
* :func:`restrict_quantifiers` — retarget NATURAL quantifiers to one of the
  restricted kinds (the executable form of the collapse theorems: Theorem 1
  and Proposition 4 license this for S and S_len respectively);
* :func:`active_domain_formula` — check the paper's "active-domain formula"
  property (all quantifiers are ADOM).
"""

from __future__ import annotations

import itertools

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
)
from repro.logic.terms import (
    AddFirst,
    AddLast,
    InsertAt,
    Lcp,
    StrConst,
    Term,
    TrimFirst,
    Var,
)

#: Graph-atom predicate names introduced by :func:`flatten_terms`.
GRAPH_PREDS = {
    "graph_add_last",
    "graph_add_first",
    "graph_trim_first",
    "graph_lcp",
    "graph_const",
    "graph_insert_at",
}


def to_nnf(formula: Formula) -> Formula:
    """Push negations to the atoms (de Morgan + quantifier duality)."""
    return _nnf(formula, positive=True)


def _nnf(f: Formula, positive: bool) -> Formula:
    if isinstance(f, (Atom, RelAtom)):
        return f if positive else Not(f)
    if isinstance(f, TrueF):
        return f if positive else FalseF()
    if isinstance(f, FalseF):
        return f if positive else TrueF()
    if isinstance(f, Not):
        return _nnf(f.inner, not positive)
    if isinstance(f, And):
        parts = tuple(_nnf(p, positive) for p in f.parts)
        return And(parts) if positive else Or(parts)
    if isinstance(f, Or):
        parts = tuple(_nnf(p, positive) for p in f.parts)
        return Or(parts) if positive else And(parts)
    if isinstance(f, Exists):
        body = _nnf(f.body, positive)
        return Exists(f.var, body, f.kind) if positive else Forall(f.var, body, f.kind)
    if isinstance(f, Forall):
        body = _nnf(f.body, positive)
        return Forall(f.var, body, f.kind) if positive else Exists(f.var, body, f.kind)
    raise TypeError(f"unknown formula node {f!r}")


class _FreshNames:
    """Generates variable names avoiding a fixed set."""

    def __init__(self, avoid: set[str]):
        self.avoid = set(avoid)
        self.counter = itertools.count()

    def fresh(self, hint: str = "t") -> str:
        while True:
            name = f"_{hint}{next(self.counter)}"
            if name not in self.avoid:
                self.avoid.add(name)
                return name


def all_variable_names(formula: Formula) -> set[str]:
    """Every variable name occurring (free or bound) in the formula."""
    names: set[str] = set()
    for f in formula.walk():
        if isinstance(f, (Atom, RelAtom)):
            for t in f.args:
                names |= t.variables()
        elif isinstance(f, (Exists, Forall)):
            names.add(f.var)
    return names


def flatten_terms(formula: Formula) -> Formula:
    """Rewrite so that every atom's arguments are plain variables.

    Function applications become fresh existentially quantified variables
    tied down by graph atoms; string constants become fresh variables tied
    by ``graph_const`` atoms (param = the literal).  The result is logically
    equivalent (functions are total, so the existentials are uniquely
    witnessed).

    The fresh quantifiers are NATURAL; the automata engine resolves them
    exactly, and the direct engine computes the witness deterministically.
    """
    fresh = _FreshNames(all_variable_names(formula))
    return _flatten(formula, fresh)


def _flatten(f: Formula, fresh: _FreshNames) -> Formula:
    if isinstance(f, (TrueF, FalseF)):
        return f
    if isinstance(f, (Atom, RelAtom)):
        new_args: list[Term] = []
        bindings: list[tuple[str, Formula]] = []
        for t in f.args:
            var, defs = _flatten_term(t, fresh)
            new_args.append(var)
            bindings.extend(defs)
        if isinstance(f, Atom):
            core: Formula = Atom(f.pred, tuple(new_args), f.param)
        else:
            core = RelAtom(f.name, tuple(new_args))
        for name, definition in reversed(bindings):
            core = Exists(name, And((definition, core)), QuantKind.NATURAL)
        return core
    if isinstance(f, Not):
        return Not(_flatten(f.inner, fresh))
    if isinstance(f, And):
        return And(tuple(_flatten(p, fresh) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(_flatten(p, fresh) for p in f.parts))
    if isinstance(f, Exists):
        return Exists(f.var, _flatten(f.body, fresh), f.kind)
    if isinstance(f, Forall):
        return Forall(f.var, _flatten(f.body, fresh), f.kind)
    raise TypeError(f"unknown formula node {f!r}")


def _flatten_term(t: Term, fresh: _FreshNames) -> tuple[Term, list[tuple[str, Formula]]]:
    """Return a variable (or keep a var) plus definitions binding it."""
    if isinstance(t, Var):
        return t, []
    if isinstance(t, StrConst):
        name = fresh.fresh("c")
        return Var(name), [(name, Atom("graph_const", (Var(name),), t.value))]
    if isinstance(t, AddLast):
        inner, defs = _flatten_term(t.inner, fresh)
        name = fresh.fresh("al")
        defs.append((name, Atom("graph_add_last", (inner, Var(name)), t.symbol)))
        return Var(name), defs
    if isinstance(t, AddFirst):
        inner, defs = _flatten_term(t.inner, fresh)
        name = fresh.fresh("af")
        defs.append((name, Atom("graph_add_first", (inner, Var(name)), t.symbol)))
        return Var(name), defs
    if isinstance(t, TrimFirst):
        inner, defs = _flatten_term(t.inner, fresh)
        name = fresh.fresh("tf")
        defs.append((name, Atom("graph_trim_first", (inner, Var(name)), t.symbol)))
        return Var(name), defs
    if isinstance(t, Lcp):
        left, defs_l = _flatten_term(t.left, fresh)
        right, defs_r = _flatten_term(t.right, fresh)
        name = fresh.fresh("g")
        defs = defs_l + defs_r
        defs.append((name, Atom("graph_lcp", (left, right, Var(name)))))
        return Var(name), defs
    if isinstance(t, InsertAt):
        inner, defs_i = _flatten_term(t.inner, fresh)
        position, defs_p = _flatten_term(t.position, fresh)
        name = fresh.fresh("ins")
        defs = defs_i + defs_p
        defs.append(
            (name, Atom("graph_insert_at", (inner, position, Var(name)), t.symbol))
        )
        return Var(name), defs
    raise TypeError(f"unknown term node {t!r}")


def restrict_quantifiers(formula: Formula, kind: QuantKind) -> Formula:
    """Replace every NATURAL quantifier's kind by ``kind``.

    This is the executable counterpart of the paper's collapse results:
    over S, ``kind=PREFIX`` preserves semantics (Proposition 2 / Theorem 1);
    over S_len, ``kind=LENGTH`` does (Proposition 4).  Quantifiers already
    restricted are left alone.
    """
    if isinstance(formula, (Atom, RelAtom, TrueF, FalseF)):
        return formula
    if isinstance(formula, Not):
        return Not(restrict_quantifiers(formula.inner, kind))
    if isinstance(formula, And):
        return And(tuple(restrict_quantifiers(p, kind) for p in formula.parts))
    if isinstance(formula, Or):
        return Or(tuple(restrict_quantifiers(p, kind) for p in formula.parts))
    if isinstance(formula, Exists):
        new_kind = kind if formula.kind is QuantKind.NATURAL else formula.kind
        return Exists(formula.var, restrict_quantifiers(formula.body, kind), new_kind)
    if isinstance(formula, Forall):
        new_kind = kind if formula.kind is QuantKind.NATURAL else formula.kind
        return Forall(formula.var, restrict_quantifiers(formula.body, kind), new_kind)
    raise TypeError(f"unknown formula node {formula!r}")


def is_active_domain_formula(formula: Formula) -> bool:
    """True iff every quantifier is ADOM (the paper's active-domain form)."""
    return all(
        f.kind is QuantKind.ADOM
        for f in formula.walk()
        if isinstance(f, (Exists, Forall))
    )


def has_natural_quantifier(formula: Formula) -> bool:
    return any(
        f.kind is QuantKind.NATURAL
        for f in formula.walk()
        if isinstance(f, (Exists, Forall))
    )
