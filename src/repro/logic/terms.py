"""Terms of the string calculi.

A term denotes a string: a variable, the empty-string constant, a string
literal, or the application of one of the paper's string *functions*
(``l_a`` add-last, ``f_a`` add-first, ``TRIM_a`` trim-first, ``^`` longest
common prefix).  Terms are immutable and hashable.

Which function symbols are legal depends on the structure (e.g. ``f_a`` and
``TRIM_a`` belong to S_left only); that check lives in
:mod:`repro.structures`, not here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


class Term:
    """Base class for terms; subclasses are frozen dataclasses."""

    def variables(self) -> frozenset[str]:
        """Names of the variables occurring in this term."""
        raise NotImplementedError

    def substitute(self, mapping: dict[str, "Term"]) -> "Term":
        """Replace variables by terms according to ``mapping``."""
        raise NotImplementedError

    def evaluate(self, assignment: dict[str, str]) -> str:
        """Concrete value of the term under a variable assignment."""
        raise NotImplementedError

    def is_ground(self) -> bool:
        return not self.variables()


@dataclass(frozen=True)
class Var(Term):
    """A string variable."""

    name: str

    def variables(self) -> frozenset[str]:
        return frozenset([self.name])

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return mapping.get(self.name, self)

    def evaluate(self, assignment: dict[str, str]) -> str:
        try:
            return assignment[self.name]
        except KeyError:
            raise KeyError(f"unbound variable {self.name!r}") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StrConst(Term):
    """A string literal (the empty literal is the constant ``epsilon``)."""

    value: str

    def variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return self

    def evaluate(self, assignment: dict[str, str]) -> str:
        return self.value

    def __str__(self) -> str:
        return "eps" if not self.value else f"'{self.value}'"


#: The empty-string constant (the paper's ``epsilon``).
EPS = StrConst("")


@dataclass(frozen=True)
class AddLast(Term):
    """``l_a(t) = t . a`` (appends symbol ``symbol``)."""

    inner: Term
    symbol: str

    def variables(self) -> frozenset[str]:
        return self.inner.variables()

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return AddLast(self.inner.substitute(mapping), self.symbol)

    def evaluate(self, assignment: dict[str, str]) -> str:
        return self.inner.evaluate(assignment) + self.symbol

    def __str__(self) -> str:
        return f"add_last({self.inner}, '{self.symbol}')"


@dataclass(frozen=True)
class AddFirst(Term):
    """``f_a(t) = a . t`` (prepends symbol ``symbol``; S_left only)."""

    inner: Term
    symbol: str

    def variables(self) -> frozenset[str]:
        return self.inner.variables()

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return AddFirst(self.inner.substitute(mapping), self.symbol)

    def evaluate(self, assignment: dict[str, str]) -> str:
        return self.symbol + self.inner.evaluate(assignment)

    def __str__(self) -> str:
        return f"add_first({self.inner}, '{self.symbol}')"


@dataclass(frozen=True)
class TrimFirst(Term):
    """``TRIM_a(t)``: drop one leading ``symbol``, else epsilon (S_left only)."""

    inner: Term
    symbol: str

    def variables(self) -> frozenset[str]:
        return self.inner.variables()

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return TrimFirst(self.inner.substitute(mapping), self.symbol)

    def evaluate(self, assignment: dict[str, str]) -> str:
        value = self.inner.evaluate(assignment)
        if value.startswith(self.symbol) and value:
            return value[1:]
        return ""

    def __str__(self) -> str:
        return f"trim_first({self.inner}, '{self.symbol}')"


@dataclass(frozen=True)
class InsertAt(Term):
    """``insert_a(t, p)``: insert ``symbol`` into ``t`` right after prefix ``p``.

    The paper's Section 8 future-work operation ("inserting characters at
    arbitrary position in a string x, specified by a prefix of x").  Total
    semantics: if ``p`` is a prefix of ``t`` (so ``t = p . z``) the value
    is ``p . symbol . z``; otherwise epsilon.  With ``p = eps`` this is
    ``f_a``; with ``p = t`` it is ``l_a`` — so the extension S_insert
    subsumes both S_left's and S's function vocabulary.
    """

    inner: Term
    position: Term
    symbol: str

    def variables(self) -> frozenset[str]:
        return self.inner.variables() | self.position.variables()

    def substitute(self, mapping: dict[str, "Term"]) -> "Term":
        return InsertAt(
            self.inner.substitute(mapping),
            self.position.substitute(mapping),
            self.symbol,
        )

    def evaluate(self, assignment: dict[str, str]) -> str:
        value = self.inner.evaluate(assignment)
        position = self.position.evaluate(assignment)
        if value.startswith(position):
            return position + self.symbol + value[len(position):]
        return ""

    def __str__(self) -> str:
        return f"insert_at({self.inner}, {self.position}, '{self.symbol}')"


@dataclass(frozen=True)
class Lcp(Term):
    """``t1 ^ t2``: the longest common prefix of two terms."""

    left: Term
    right: Term

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def substitute(self, mapping: dict[str, Term]) -> Term:
        return Lcp(self.left.substitute(mapping), self.right.substitute(mapping))

    def evaluate(self, assignment: dict[str, str]) -> str:
        a = self.left.evaluate(assignment)
        b = self.right.evaluate(assignment)
        i = 0
        n = min(len(a), len(b))
        while i < n and a[i] == b[i]:
            i += 1
        return a[:i]

    def __str__(self) -> str:
        return f"lcp({self.left}, {self.right})"


TermLike = Union[Term, str]


def as_term(value: TermLike) -> Term:
    """Coerce a Python string (variable name) or Term into a Term.

    Strings are interpreted as *variable names*; use :class:`StrConst` (or
    the parser's quoted literals) for string constants.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot interpret {value!r} as a term")
