"""Parser for a concrete textual query syntax.

Grammar (EBNF; whitespace-insensitive)::

    formula   := iff
    iff       := implies { "<->" implies }
    implies   := or [ "->" implies ]                      (right associative)
    or        := and { "|" and }
    and       := unary { "&" unary }
    unary     := "!" unary | quantifier | primary
    quantifier:= ("exists" | "forall") [kind] var { "," var } ":" unary
    kind      := "adom" | "prefix" | "len"
    primary   := "(" formula ")" | "true" | "false" | atom | comparison
    atom      := NAME "(" [args] ")"        -- predicate or schema relation
    comparison:= term ( "=" | "!=" | "<<=" | "<<" ) term
    term      := NAME | "eps" | STRING | func "(" ... ")"
    func      := add_last | add_first | trim_first | lcp

Interpreted predicates (see :mod:`repro.logic.formulas`): ``eq, prefix,
sprefix, ext1, el, len_le, len_lt, lex_le, lex_lt`` take term arguments;
``last(t, 'a')`` takes a symbol parameter; ``matches(t, "re")`` and
``psuffix(t1, t2, "re")`` take a regex parameter.  Any other
``Name(args)`` is a database relation atom.

Examples::

    exists x: R(x) & last(x, '0') & exists y: (ext1(y, x) & last(y, '1'))
    forall adom x: S(x) -> matches(x, "0(0|1)*")
    exists prefix y: y << x & el(y, z)
"""

from __future__ import annotations

import re

from repro.errors import ArityError, ParseError
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    PRED_ARITIES,
    QuantKind,
    RelAtom,
    TrueF,
    check_atom,
)
from repro.logic.terms import (
    AddFirst,
    AddLast,
    EPS,
    InsertAt,
    Lcp,
    StrConst,
    Term,
    TrimFirst,
    Var,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<squote>'(?:[^'\\]|\\.)*')
  | (?P<dquote>"(?:[^"\\]|\\.)*")
  | (?P<op><->|->|<<=|<<|!=|=|\(|\)|,|:|&|\||!)
    """,
    re.VERBOSE,
)

_QUANT_KINDS = {"adom": QuantKind.ADOM, "prefix": QuantKind.PREFIX, "len": QuantKind.LENGTH}

_TERM_FUNCS = {"add_last", "add_first", "trim_first", "lcp", "insert_at"}

_PARAM_PREDS = {"last", "matches", "psuffix"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = m.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return re.sub(r"\\(.)", r"\1", body)


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.idx = 0

    # ------------------------------------------------------------- helpers

    def peek(self) -> _Token:
        return self.tokens[self.idx]

    def advance(self) -> _Token:
        tok = self.tokens[self.idx]
        self.idx += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.peek()
        if tok.text != text:
            raise ParseError(f"expected {text!r}, found {tok.text!r}", self.text, tok.pos)
        return self.advance()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.peek().pos)

    # ------------------------------------------------------------- formula

    def parse(self) -> Formula:
        f = self.iff()
        if self.peek().kind != "eof":
            raise self.error(f"trailing input {self.peek().text!r}")
        return f

    def iff(self) -> Formula:
        f = self.implies()
        while self.peek().text == "<->":
            self.advance()
            g = self.implies()
            f = And((Or((Not(f), g)), Or((Not(g), f))))
        return f

    def implies(self) -> Formula:
        f = self.or_()
        if self.peek().text == "->":
            self.advance()
            g = self.implies()
            return Or((Not(f), g))
        return f

    def or_(self) -> Formula:
        parts = [self.and_()]
        while self.peek().text == "|":
            self.advance()
            parts.append(self.and_())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def and_(self) -> Formula:
        parts = [self.unary()]
        while self.peek().text == "&":
            self.advance()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def unary(self) -> Formula:
        tok = self.peek()
        if tok.text == "!":
            self.advance()
            return Not(self.unary())
        if tok.kind == "name" and tok.text in ("exists", "forall"):
            return self.quantifier()
        return self.primary()

    def quantifier(self) -> Formula:
        head = self.advance().text
        kind = QuantKind.NATURAL
        if self.peek().kind == "name" and self.peek().text in _QUANT_KINDS:
            # Lookahead: 'exists prefix x: ...' vs a variable named 'prefix'
            # used as 'exists prefix: ...'. A kind word must be followed by
            # another name token.
            nxt = self.tokens[self.idx + 1]
            if nxt.kind == "name":
                kind = _QUANT_KINDS[self.advance().text]
        names = [self._var_name()]
        while self.peek().text == ",":
            self.advance()
            names.append(self._var_name())
        self.expect(":")
        # Quantifier scope extends as far right as possible (standard
        # logic convention); parenthesize to limit it.
        body = self.iff()
        ctor = Exists if head == "exists" else Forall
        for name in reversed(names):
            body = ctor(name, body, kind)
        return body

    def _var_name(self) -> str:
        tok = self.peek()
        if tok.kind != "name":
            raise self.error(f"expected variable name, found {tok.text!r}")
        return self.advance().text

    def primary(self) -> Formula:
        tok = self.peek()
        if tok.text == "(":
            # Could be a parenthesised formula OR a parenthesised term used
            # in a comparison. Formulas are far more common; try formula
            # first, fall back to comparison.
            save = self.idx
            try:
                self.advance()
                f = self.iff()
                self.expect(")")
                return f
            except ParseError:
                self.idx = save
                return self.comparison()
        if tok.kind == "name":
            if tok.text == "true":
                self.advance()
                return TrueF()
            if tok.text == "false":
                self.advance()
                return FalseF()
            nxt = self.tokens[self.idx + 1]
            if nxt.text == "(" and tok.text not in _TERM_FUNCS and tok.text != "eps":
                return self.call_atom()
        return self.comparison()

    def call_atom(self) -> Formula:
        name = self.advance().text
        self.expect("(")
        args: list[Term] = []
        param: str | None = None
        if self.peek().text != ")":
            while True:
                if self.peek().kind in ("squote", "dquote") and name in _PARAM_PREDS:
                    # Parameter position (last argument of last/matches/psuffix).
                    param_tok = self.advance()
                    param = _unquote(param_tok.text)
                    break
                args.append(self.term())
                if self.peek().text == ",":
                    self.advance()
                    continue
                break
        self.expect(")")
        if name in PRED_ARITIES:
            try:
                return check_atom(Atom(name, tuple(args), param))
            except ArityError as exc:
                raise ParseError(str(exc), self.text, self.peek().pos) from exc
        if param is not None:
            raise self.error(f"relation {name!r} cannot take a quoted parameter")
        return RelAtom(name, tuple(args))

    def comparison(self) -> Formula:
        left = self.term()
        op = self.peek().text
        if op == "=":
            self.advance()
            return Atom("eq", (left, self.term()))
        if op == "!=":
            self.advance()
            return Not(Atom("eq", (left, self.term())))
        if op == "<<=":
            self.advance()
            return Atom("prefix", (left, self.term()))
        if op == "<<":
            self.advance()
            return Atom("sprefix", (left, self.term()))
        raise self.error(f"expected comparison operator, found {op!r}")

    # ---------------------------------------------------------------- term

    def term(self) -> Term:
        tok = self.peek()
        if tok.text == "(":
            self.advance()
            t = self.term()
            self.expect(")")
            return t
        if tok.kind in ("squote", "dquote"):
            self.advance()
            return StrConst(_unquote(tok.text))
        if tok.kind != "name":
            raise self.error(f"expected term, found {tok.text!r}")
        if tok.text == "eps":
            self.advance()
            return EPS
        if tok.text in _TERM_FUNCS:
            return self._func_term()
        self.advance()
        return Var(tok.text)

    def _func_term(self) -> Term:
        name = self.advance().text
        self.expect("(")
        first = self.term()
        self.expect(",")
        if name == "lcp":
            second = self.term()
            self.expect(")")
            return Lcp(first, second)
        if name == "insert_at":
            position = self.term()
            self.expect(",")
            sym_tok = self.peek()
            if sym_tok.kind not in ("squote", "dquote"):
                raise self.error("insert_at expects a quoted symbol as third argument")
            self.advance()
            symbol = _unquote(sym_tok.text)
            if len(symbol) != 1:
                raise self.error(f"insert_at expects a single symbol, got {symbol!r}")
            self.expect(")")
            return InsertAt(first, position, symbol)
        sym_tok = self.peek()
        if sym_tok.kind not in ("squote", "dquote"):
            raise self.error(f"{name} expects a quoted symbol as second argument")
        self.advance()
        symbol = _unquote(sym_tok.text)
        if len(symbol) != 1:
            raise self.error(f"{name} expects a single symbol, got {symbol!r}")
        self.expect(")")
        ctor = {"add_last": AddLast, "add_first": AddFirst, "trim_first": TrimFirst}[name]
        return ctor(first, symbol)


def parse_formula(text: str) -> Formula:
    """Parse the textual query syntax into a :class:`Formula`."""
    return _Parser(text).parse()
