"""Canonical formula forms: one identity for alpha-equivalent queries.

Two formulas that differ only in bound-variable names, or in the order of
commutative conjuncts/disjuncts, denote the same query — but ``str()``-based
cache keys treat them as distinct, so every cache in the evaluation stack
(compiled automata, algebra subplans, prepared-query plans) used to pay the
full compilation cost again for each spelling.  This module provides the
shared normalization pass that collapses those spellings:

* :func:`canonical_serialization` — a stable, name-independent rendering:
  bound variables become de-Bruijn-style binder distances, commutative
  :class:`~repro.logic.formulas.And`/:class:`~repro.logic.formulas.Or`
  children are rendered in sorted order.  Free variables keep their names
  (they are the query's output columns, so renaming them would change the
  answer's schema).
* :func:`canonical_fingerprint` — a SHA-1 hex digest of the serialization;
  this is what :func:`repro.engine.cache.formula_key` keys every cache on,
  so alpha-equivalent and conjunct-permuted (sub)formulas share entries.
* :func:`canonicalize` — an actual :class:`~repro.logic.formulas.Formula`
  in canonical shape: commutative children sorted, every binder renamed to
  a positional ``_c<i>`` name.  The planner canonicalizes each query at
  plan time, so downstream structural memos (e.g. the algebra executor's
  subplan memo) unify equivalent queries without knowing about alpha
  equivalence at all.

Both directions are semantics-preserving: renaming bound variables is
alpha-conversion, and conjunction/disjunction are commutative in every
engine (boolean evaluation, automaton intersection/union, join order).

Properties (pinned by ``tests/test_canonical.py``)::

    canonical_fingerprint(f1) == canonical_fingerprint(f2)
        for alpha-equivalent or conjunct-permuted f1, f2
    canonicalize(canonicalize(f)) == canonicalize(f)          # idempotent
    canonical_fingerprint(canonicalize(f)) == canonical_fingerprint(f)
    canonicalize(f).free_variables() == f.free_variables()
"""

from __future__ import annotations

import functools
import hashlib
import itertools

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    RelAtom,
    TrueF,
)
from repro.logic.terms import (
    AddFirst,
    AddLast,
    InsertAt,
    Lcp,
    StrConst,
    Term,
    TrimFirst,
    Var,
)

__all__ = [
    "canonical_fingerprint",
    "canonical_serialization",
    "canonicalize",
]

#: Prefix of the positional bound-variable names :func:`canonicalize`
#: assigns (suffixed to dodge any free variable that shares the name).
CANONICAL_PREFIX = "_c"


# ------------------------------------------------------------- serialization


def _term_repr(t: Term, env: dict[str, int], depth: int) -> str:
    """Name-independent rendering of a term under binder environment ``env``.

    ``env`` maps bound-variable names to the depth of their binder;
    ``depth`` is the current binder depth, so ``depth - env[name]`` is the
    de-Bruijn distance — identical for alpha-equivalent formulas.
    """
    if isinstance(t, Var):
        if t.name in env:
            return f"@{depth - env[t.name]}"
        return f"${t.name}"
    if isinstance(t, StrConst):
        return f"lit({t.value!r})"
    if isinstance(t, AddLast):
        return f"add_last[{t.symbol}]({_term_repr(t.inner, env, depth)})"
    if isinstance(t, AddFirst):
        return f"add_first[{t.symbol}]({_term_repr(t.inner, env, depth)})"
    if isinstance(t, TrimFirst):
        return f"trim_first[{t.symbol}]({_term_repr(t.inner, env, depth)})"
    if isinstance(t, Lcp):
        return (
            f"lcp({_term_repr(t.left, env, depth)},"
            f"{_term_repr(t.right, env, depth)})"
        )
    if isinstance(t, InsertAt):
        return (
            f"insert_at[{t.symbol}]({_term_repr(t.inner, env, depth)},"
            f"{_term_repr(t.position, env, depth)})"
        )
    raise TypeError(f"unknown term node {t!r}")


def _serialize(f: Formula, env: dict[str, int], depth: int) -> str:
    if isinstance(f, TrueF):
        return "true"
    if isinstance(f, FalseF):
        return "false"
    if isinstance(f, Atom):
        args = ",".join(_term_repr(t, env, depth) for t in f.args)
        return f"atom:{f.pred}[{f.param!r}]({args})"
    if isinstance(f, RelAtom):
        args = ",".join(_term_repr(t, env, depth) for t in f.args)
        return f"rel:{f.name}({args})"
    if isinstance(f, Not):
        return f"not({_serialize(f.inner, env, depth)})"
    if isinstance(f, (And, Or)):
        tag = "and" if isinstance(f, And) else "or"
        parts = sorted(_serialize(p, env, depth) for p in f.parts)
        return f"{tag}({';'.join(parts)})"
    if isinstance(f, (Exists, Forall)):
        tag = "exists" if isinstance(f, Exists) else "forall"
        inner_env = dict(env)
        inner_env[f.var] = depth
        body = _serialize(f.body, inner_env, depth + 1)
        return f"{tag}:{f.kind.value}({body})"
    raise TypeError(f"unknown formula node {f!r}")


@functools.lru_cache(maxsize=8192)
def canonical_serialization(formula: Formula) -> str:
    """The stable structural rendering (see module docstring)."""
    return _serialize(formula, {}, 0)


@functools.lru_cache(maxsize=8192)
def canonical_fingerprint(formula: Formula) -> str:
    """SHA-1 hex digest of :func:`canonical_serialization`.

    Equal for alpha-equivalent and conjunct/disjunct-permuted formulas;
    this is the formula component of every evaluation-stack cache key
    (:func:`repro.engine.cache.formula_key`).
    """
    return hashlib.sha1(canonical_serialization(formula).encode()).hexdigest()


# ------------------------------------------------------------ canonical form


def _sort_children(f: Formula, env: dict[str, int], depth: int) -> Formula:
    """Recursively order commutative children by their serialization."""
    if isinstance(f, (TrueF, FalseF, Atom, RelAtom)):
        return f
    if isinstance(f, Not):
        return Not(_sort_children(f.inner, env, depth))
    if isinstance(f, (And, Or)):
        parts = tuple(_sort_children(p, env, depth) for p in f.parts)
        parts = tuple(sorted(parts, key=lambda p: _serialize(p, env, depth)))
        return And(parts) if isinstance(f, And) else Or(parts)
    if isinstance(f, (Exists, Forall)):
        inner_env = dict(env)
        inner_env[f.var] = depth
        body = _sort_children(f.body, inner_env, depth + 1)
        ctor = Exists if isinstance(f, Exists) else Forall
        return ctor(f.var, body, f.kind)
    raise TypeError(f"unknown formula node {f!r}")


def _rename_term(t: Term, mapping: dict[str, str]) -> Term:
    return t.substitute({old: Var(new) for old, new in mapping.items()})


def _rename_binders(
    f: Formula, mapping: dict[str, str], names, avoid: frozenset[str]
) -> Formula:
    """Give every binder the next positional name (pre-order traversal)."""
    if isinstance(f, (TrueF, FalseF)):
        return f
    if isinstance(f, Atom):
        return Atom(f.pred, tuple(_rename_term(t, mapping) for t in f.args), f.param)
    if isinstance(f, RelAtom):
        return RelAtom(f.name, tuple(_rename_term(t, mapping) for t in f.args))
    if isinstance(f, Not):
        return Not(_rename_binders(f.inner, mapping, names, avoid))
    if isinstance(f, (And, Or)):
        parts = tuple(_rename_binders(p, mapping, names, avoid) for p in f.parts)
        return And(parts) if isinstance(f, And) else Or(parts)
    if isinstance(f, (Exists, Forall)):
        fresh = next(names)
        while fresh in avoid:
            fresh = next(names)
        inner = dict(mapping)
        inner[f.var] = fresh
        body = _rename_binders(f.body, inner, names, avoid)
        ctor = Exists if isinstance(f, Exists) else Forall
        return ctor(fresh, body, f.kind)
    raise TypeError(f"unknown formula node {f!r}")


@functools.lru_cache(maxsize=8192)
def canonicalize(formula: Formula) -> Formula:
    """The canonical alpha-variant: sorted commutative children, binders
    renamed to positional ``_c<i>`` names (free variables untouched).

    Children are sorted *before* renaming, against the name-independent
    serialization, so the result is stable: canonicalizing twice is the
    identity, and any two alpha-equivalent/permuted inputs canonicalize to
    structurally equal formulas.
    """
    free = formula.free_variables()
    sorted_tree = _sort_children(formula, {}, 0)
    names = (f"{CANONICAL_PREFIX}{i}" for i in itertools.count())
    return _rename_binders(sorted_tree, {}, names, free)
