"""First-order logic layer: terms, formulas, parser, transformations.

This is the shared query representation consumed by both evaluation engines
(:mod:`repro.eval`), the safety analyses (:mod:`repro.safety`), and the
calculus-to-algebra compiler (:mod:`repro.algebra`).
"""

from repro.logic.canonical import (
    canonical_fingerprint,
    canonical_serialization,
    canonicalize,
)
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    PRED_ARITIES,
    QuantKind,
    RelAtom,
    TrueF,
    check_atom,
    fresh_variable,
)
from repro.logic.parser import parse_formula
from repro.logic.terms import (
    AddFirst,
    AddLast,
    EPS,
    Lcp,
    StrConst,
    Term,
    TrimFirst,
    Var,
    as_term,
)
from repro.logic.transform import (
    GRAPH_PREDS,
    all_variable_names,
    flatten_terms,
    has_natural_quantifier,
    is_active_domain_formula,
    restrict_quantifiers,
    to_nnf,
)

__all__ = [
    "And",
    "Atom",
    "AddFirst",
    "AddLast",
    "EPS",
    "Exists",
    "FalseF",
    "Forall",
    "Formula",
    "GRAPH_PREDS",
    "Lcp",
    "Not",
    "Or",
    "PRED_ARITIES",
    "QuantKind",
    "RelAtom",
    "StrConst",
    "Term",
    "TrimFirst",
    "TrueF",
    "Var",
    "all_variable_names",
    "as_term",
    "canonical_fingerprint",
    "canonical_serialization",
    "canonicalize",
    "check_atom",
    "flatten_terms",
    "fresh_variable",
    "has_natural_quantifier",
    "is_active_domain_formula",
    "parse_formula",
    "restrict_quantifiers",
    "to_nnf",
]
