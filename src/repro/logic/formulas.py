"""First-order formulas of the string calculi RC(SC, M).

A formula is built from

* *structure atoms* (:class:`Atom`): the interpreted predicates of S,
  S_len, S_left, S_reg — prefix, equal-length, last-symbol, the regular
  pattern predicates, lexicographic order, equality;
* *database atoms* (:class:`RelAtom`): schema relations;
* boolean connectives; and
* quantifiers carrying a :class:`QuantKind` — the paper distinguishes
  *natural* quantification over all of ``Sigma*`` from the restricted kinds
  used by its collapse theorems (active-domain, prefix-restricted
  [Proposition 2], length-restricted [Proposition 4]).

Predicate names used by :class:`Atom`:

==============  =====  ==========================================  =========
name            arity  meaning                                     structure
==============  =====  ==========================================  =========
``eq``          2      ``x = y``                                   all
``prefix``      2      ``x <<= y``                                 all
``sprefix``     2      ``x << y``                                  all
``ext1``        2      ``y`` extends ``x`` by one symbol           all
``last``        1      last symbol is ``param``                    all
``el``          2      ``|x| = |y|``                               S_len
``len_le``      2      ``|x| <= |y|``                              S_len
``len_lt``      2      ``|x| < |y|``                               S_len
``lex_le``      2      lexicographic                               all
``lex_lt``      2      strict lexicographic                        all
``matches``     1      ``x`` in the language of regex ``param``    see note
``psuffix``     2      ``P_L``: ``x <<= y`` and ``y - x`` in L     see note
==============  =====  ==========================================  =========

Note: ``matches``/``psuffix`` with a *star-free* parameter language belong
to S's definable predicates; with a general regular parameter they are
S_reg's defining predicates (Section 7).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ArityError
from repro.logic.terms import Term, Var


class QuantKind(enum.Enum):
    """How a quantifier ranges (paper Sections 5.1-5.2).

    NATURAL
        over all of ``Sigma*`` — the default first-order semantics.
    ADOM
        over the active domain of the database.
    PREFIX
        over prefixes of active-domain strings and of the free variables,
        allowing a bounded right-extension (the paper's ``exists x in
        ext-dom`` of Proposition 2).
    LENGTH
        over all strings no longer than the longest active-domain / free
        string, plus a bounded slack (Proposition 4's length-restricted
        quantifiers).
    """

    NATURAL = "natural"
    ADOM = "adom"
    PREFIX = "prefix"
    LENGTH = "length"


class Formula:
    """Base class of formulas; subclasses are frozen dataclasses."""

    def free_variables(self) -> frozenset[str]:
        raise NotImplementedError

    def substitute(self, mapping: dict[str, Term]) -> "Formula":
        """Capture-avoiding substitution of terms for free variables."""
        raise NotImplementedError

    def children(self) -> tuple["Formula", ...]:
        return ()

    def relation_names(self) -> frozenset[str]:
        """Names of all schema relations used in the formula."""
        names: set[str] = set()
        for f in self.walk():
            if isinstance(f, RelAtom):
                names.add(f.name)
        return frozenset(names)

    def database_dependent(self) -> bool:
        """Does evaluation depend on the database instance?

        True when the formula mentions a schema relation *or* contains a
        restricted quantifier — ADOM, PREFIX, and LENGTH quantifiers all
        derive their range from the active domain ``adom(D)``, so only
        relation-free formulas whose quantifiers are all NATURAL denote
        the same relation over every database.
        """
        for f in self.walk():
            if isinstance(f, RelAtom):
                return True
            if isinstance(f, (Exists, Forall)) and f.kind is not QuantKind.NATURAL:
                return True
        return False

    def walk(self) -> Iterator["Formula"]:
        """All subformulas (pre-order)."""
        yield self
        for c in self.children():
            yield from c.walk()

    def atoms(self) -> Iterator["Formula"]:
        for f in self.walk():
            if isinstance(f, (Atom, RelAtom)):
                yield f

    def quantifier_rank(self) -> int:
        if isinstance(self, (Exists, Forall)):
            return 1 + self.body.quantifier_rank()
        return max((c.quantifier_rank() for c in self.children()), default=0)

    def quantifier_kinds(self) -> frozenset[QuantKind]:
        kinds = set()
        for f in self.walk():
            if isinstance(f, (Exists, Forall)):
                kinds.add(f.kind)
        return frozenset(kinds)

    # Connective sugar -----------------------------------------------------

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Or((Not(self), other))


@dataclass(frozen=True)
class TrueF(Formula):
    """The formula *true*."""

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return self

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    """The formula *false*."""

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return self

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Atom(Formula):
    """An interpreted (structure) atom.

    ``param`` carries the symbol of ``last`` or the regex text of
    ``matches`` / ``psuffix``; it is part of the predicate, not an argument.
    """

    pred: str
    args: tuple[Term, ...]
    param: Optional[str] = None

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.args:
            out |= t.variables()
        return out

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return Atom(self.pred, tuple(t.substitute(mapping) for t in self.args), self.param)

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.args)
        if self.param is not None:
            if self.pred == "last":
                return f"last({inner}, '{self.param}')"
            return f'{self.pred}({inner}, "{self.param}")'
        return f"{self.pred}({inner})"


@dataclass(frozen=True)
class RelAtom(Formula):
    """A database (schema) relation atom ``R(t_1, ..., t_k)``."""

    name: str
    args: tuple[Term, ...]

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.args:
            out |= t.variables()
        return out

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return RelAtom(self.name, tuple(t.substitute(mapping) for t in self.args))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(t) for t in self.args)})"


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def free_variables(self) -> frozenset[str]:
        return self.inner.free_variables()

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return Not(self.inner.substitute(mapping))

    def children(self) -> tuple[Formula, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        return f"!{_paren(self.inner)}"


@dataclass(frozen=True)
class And(Formula):
    parts: tuple[Formula, ...]

    def __post_init__(self):
        if len(self.parts) < 1:
            raise ValueError("And needs at least one conjunct")

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return And(tuple(p.substitute(mapping) for p in self.parts))

    def children(self) -> tuple[Formula, ...]:
        return self.parts

    def __str__(self) -> str:
        return " & ".join(_paren(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Formula):
    parts: tuple[Formula, ...]

    def __post_init__(self):
        if len(self.parts) < 1:
            raise ValueError("Or needs at least one disjunct")

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        return Or(tuple(p.substitute(mapping) for p in self.parts))

    def children(self) -> tuple[Formula, ...]:
        return self.parts

    def __str__(self) -> str:
        return " | ".join(_paren(p) for p in self.parts)


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    body: Formula
    kind: QuantKind = QuantKind.NATURAL

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.var}

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        mapping = {k: v for k, v in mapping.items() if k != self.var}
        if not mapping:
            return self
        clash = {v for t in mapping.values() for v in t.variables()}
        if self.var in clash:
            fresh = fresh_variable(self.var, clash | self.body.free_variables())
            body = self.body.substitute({self.var: Var(fresh)})
            return Exists(fresh, body.substitute(mapping), self.kind)
        return Exists(self.var, self.body.substitute(mapping), self.kind)

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        kind = "" if self.kind is QuantKind.NATURAL else f" {self.kind.value}"
        return f"exists{kind} {self.var}: {_paren(self.body)}"


@dataclass(frozen=True)
class Forall(Formula):
    var: str
    body: Formula
    kind: QuantKind = QuantKind.NATURAL

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.var}

    def substitute(self, mapping: dict[str, Term]) -> Formula:
        mapping = {k: v for k, v in mapping.items() if k != self.var}
        if not mapping:
            return self
        clash = {v for t in mapping.values() for v in t.variables()}
        if self.var in clash:
            fresh = fresh_variable(self.var, clash | self.body.free_variables())
            body = self.body.substitute({self.var: Var(fresh)})
            return Forall(fresh, body.substitute(mapping), self.kind)
        return Forall(self.var, self.body.substitute(mapping), self.kind)

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __str__(self) -> str:
        kind = "" if self.kind is QuantKind.NATURAL else f" {self.kind.value}"
        return f"forall{kind} {self.var}: {_paren(self.body)}"


def _paren(f: Formula) -> str:
    if isinstance(f, (Atom, RelAtom, TrueF, FalseF, Not)):
        return str(f)
    return f"({f})"


def fresh_variable(base: str, used: frozenset[str] | set[str]) -> str:
    """A variable name derived from ``base`` that avoids ``used``."""
    if base not in used:
        return base
    for i in itertools.count():
        candidate = f"{base}_{i}"
        if candidate not in used:
            return candidate
    raise AssertionError("unreachable")


#: Arities of the interpreted predicates (checked at construction sites).
PRED_ARITIES = {
    "eq": 2,
    "prefix": 2,
    "sprefix": 2,
    "ext1": 2,
    "last": 1,
    "el": 2,
    "len_le": 2,
    "len_lt": 2,
    "lex_le": 2,
    "lex_lt": 2,
    "matches": 1,
    "psuffix": 2,
}


def check_atom(atom: Atom) -> Atom:
    """Validate predicate name/arity; returns the atom for chaining."""
    if atom.pred not in PRED_ARITIES:
        raise ArityError(f"unknown interpreted predicate {atom.pred!r}")
    expected = PRED_ARITIES[atom.pred]
    if len(atom.args) != expected:
        raise ArityError(
            f"predicate {atom.pred!r} expects {expected} arguments, got {len(atom.args)}"
        )
    if atom.pred in ("last", "matches", "psuffix") and atom.param is None:
        raise ArityError(f"predicate {atom.pred!r} requires a parameter")
    return atom
