"""A small builder DSL for writing formulas in Python.

Example — the paper's Section 2 query "some string in R ends with 10"::

    from repro.logic.dsl import exists, rel, last, ext1, V

    q = exists("x", rel("R", "x") & last("x", "0")
                 & exists("y", ext1("y", "x") & last("y", "1")))

Bare strings denote *variables*; use :func:`lit` for string constants.
"""

from __future__ import annotations

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    QuantKind,
    RelAtom,
    TrueF,
    check_atom,
)
from repro.logic.terms import (
    AddFirst,
    AddLast,
    EPS,
    InsertAt,
    Lcp,
    StrConst,
    Term,
    TermLike,
    TrimFirst,
    Var,
    as_term,
)


def V(name: str) -> Var:
    """A variable term."""
    return Var(name)


def lit(value: str) -> StrConst:
    """A string-literal term."""
    return StrConst(value)


eps = EPS


def add_last(t: TermLike, symbol: str) -> AddLast:
    """``l_a`` applied to ``t``."""
    return AddLast(as_term(t), symbol)


def add_first(t: TermLike, symbol: str) -> AddFirst:
    """``f_a`` applied to ``t`` (S_left)."""
    return AddFirst(as_term(t), symbol)


def trim_first(t: TermLike, symbol: str) -> TrimFirst:
    """``TRIM_a`` applied to ``t`` (S_left)."""
    return TrimFirst(as_term(t), symbol)


def lcp(t1: TermLike, t2: TermLike) -> Lcp:
    """Longest common prefix term."""
    return Lcp(as_term(t1), as_term(t2))


def insert_at(t: TermLike, position: TermLike, symbol: str) -> InsertAt:
    """``insert_a(t, position)`` — the Section 8 extension (S_insert)."""
    return InsertAt(as_term(t), as_term(position), symbol)


# ------------------------------------------------------------------ atoms


def eq(t1: TermLike, t2: TermLike) -> Atom:
    return check_atom(Atom("eq", (as_term(t1), as_term(t2))))


def prefix(t1: TermLike, t2: TermLike) -> Atom:
    """``t1 <<= t2``."""
    return check_atom(Atom("prefix", (as_term(t1), as_term(t2))))


def sprefix(t1: TermLike, t2: TermLike) -> Atom:
    """``t1 << t2`` (strict)."""
    return check_atom(Atom("sprefix", (as_term(t1), as_term(t2))))


def ext1(t1: TermLike, t2: TermLike) -> Atom:
    """``t2`` extends ``t1`` by exactly one symbol (the paper's ``<``)."""
    return check_atom(Atom("ext1", (as_term(t1), as_term(t2))))


def last(t: TermLike, symbol: str) -> Atom:
    """``L_symbol(t)``."""
    return check_atom(Atom("last", (as_term(t),), symbol))


def el(t1: TermLike, t2: TermLike) -> Atom:
    """``|t1| = |t2|`` (S_len)."""
    return check_atom(Atom("el", (as_term(t1), as_term(t2))))


def len_le(t1: TermLike, t2: TermLike) -> Atom:
    """``|t1| <= |t2|`` (S_len)."""
    return check_atom(Atom("len_le", (as_term(t1), as_term(t2))))


def len_lt(t1: TermLike, t2: TermLike) -> Atom:
    """``|t1| < |t2|`` (S_len)."""
    return check_atom(Atom("len_lt", (as_term(t1), as_term(t2))))


def lex_le(t1: TermLike, t2: TermLike) -> Atom:
    """``t1 <=_lex t2``."""
    return check_atom(Atom("lex_le", (as_term(t1), as_term(t2))))


def lex_lt(t1: TermLike, t2: TermLike) -> Atom:
    """``t1 <_lex t2``."""
    return check_atom(Atom("lex_lt", (as_term(t1), as_term(t2))))


def matches(t: TermLike, regex: str) -> Atom:
    """``t`` belongs to the language of ``regex`` (S_reg's ``P_L(eps, t)``)."""
    return check_atom(Atom("matches", (as_term(t),), regex))


def psuffix(t1: TermLike, t2: TermLike, regex: str) -> Atom:
    """The paper's ``P_L(t1, t2)``: ``t1 <<= t2`` and ``t2 - t1 in L``."""
    return check_atom(Atom("psuffix", (as_term(t1), as_term(t2)), regex))


def rel(name: str, *args: TermLike) -> RelAtom:
    """A database relation atom."""
    return RelAtom(name, tuple(as_term(a) for a in args))


# ------------------------------------------------------- quantifiers etc.


def exists(var: str, body: Formula, kind: QuantKind = QuantKind.NATURAL) -> Exists:
    return Exists(var, body, kind)


def forall(var: str, body: Formula, kind: QuantKind = QuantKind.NATURAL) -> Forall:
    return Forall(var, body, kind)


def exists_adom(var: str, body: Formula) -> Exists:
    """Active-domain existential (the paper's ``exists x in adom``)."""
    return Exists(var, body, QuantKind.ADOM)


def forall_adom(var: str, body: Formula) -> Forall:
    return Forall(var, body, QuantKind.ADOM)


def exists_prefix(var: str, body: Formula) -> Exists:
    """Prefix-restricted existential (Proposition 2's ``ext-dom``)."""
    return Exists(var, body, QuantKind.PREFIX)


def forall_prefix(var: str, body: Formula) -> Forall:
    return Forall(var, body, QuantKind.PREFIX)


def exists_len(var: str, body: Formula) -> Exists:
    """Length-restricted existential (Proposition 4)."""
    return Exists(var, body, QuantKind.LENGTH)


def forall_len(var: str, body: Formula) -> Forall:
    return Forall(var, body, QuantKind.LENGTH)


def and_(*parts: Formula) -> Formula:
    if not parts:
        return TrueF()
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def or_(*parts: Formula) -> Formula:
    if not parts:
        return FalseF()
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def not_(f: Formula) -> Not:
    return Not(f)


def implies(a: Formula, b: Formula) -> Formula:
    return Or((Not(a), b))


def iff(a: Formula, b: Formula) -> Formula:
    return And((implies(a, b), implies(b, a)))


true = TrueF()
false = FalseF()
