"""The MVCC delta store: versioned databases evolved by insert/delete.

A :class:`VersionedDatabase` wraps an immutable
:class:`~repro.database.instance.Database` and turns it into a *chain of
immutable snapshots*: each :meth:`~VersionedDatabase.insert` /
:meth:`~VersionedDatabase.delete` produces a **new** ``Database`` (the
old one is untouched — in-flight queries that already resolved a
snapshot keep answering against it), built in O(|delta|):

* untouched relation frozensets are **shared** with the parent snapshot;
* the active domain is maintained from per-string occurrence refcounts
  (kept by the store), so adom membership is re-checked only for the
  strings the delta actually touched;
* the new snapshot's cache fingerprint is **chained** —
  ``sha1(parent_fingerprint + delta_digest)`` — and seeded into the
  instance, so no cache layer ever rehashes the full contents.  Chained
  fingerprints are injective on content (a fingerprint determines the
  base content plus the exact delta sequence) but deliberately distinct
  from the content digest a from-scratch registration would get: equal
  content reached by different histories is a conservative cache miss,
  never a wrong hit.

Every applied delta is recorded as a :class:`~repro.delta.maintenance.
Transition` in the process-wide registry, which is what lets the
engines' caches survive the change (see :mod:`repro.delta.maintenance`).
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional, Union

from repro.database.instance import Database
from repro.database.schema import Schema
from repro.engine.cache import database_fingerprint
from repro.engine.metrics import METRICS
from repro.errors import ArityError, ReproError

__all__ = ["DatabaseVersion", "Delta", "DeltaError", "VersionedDatabase"]

Row = tuple[str, ...]

#: How many transitions a maintenance chain may walk before giving up —
#: bounds the work of promoting a cache entry across many small deltas.
MAX_CHAIN = 16


class DeltaError(ReproError):
    """An insert/delete the versioned store cannot apply."""


@dataclass(frozen=True)
class Delta:
    """One *effective* change set between two adjacent versions.

    ``inserts`` rows are guaranteed absent from the parent snapshot and
    ``deletes`` rows guaranteed present (the store normalizes no-op rows
    away), which is what makes the ΔQ maintenance rules exact:
    ``child = parent - deletes + inserts`` relation by relation, with
    the three sets pairwise disjoint per relation.
    """

    inserts: tuple[tuple[str, frozenset[Row]], ...]
    deletes: tuple[tuple[str, frozenset[Row]], ...]

    @property
    def touched(self) -> frozenset[str]:
        """Relations whose contents differ between parent and child."""
        return frozenset(
            name for name, _ in self.inserts
        ) | frozenset(name for name, _ in self.deletes)

    def inserted(self, relation: str) -> frozenset[Row]:
        for name, rows in self.inserts:
            if name == relation:
                return rows
        return frozenset()

    def deleted(self, relation: str) -> frozenset[Row]:
        for name, rows in self.deletes:
            if name == relation:
                return rows
        return frozenset()

    @property
    def size(self) -> int:
        return sum(len(rows) for _, rows in self.inserts) + sum(
            len(rows) for _, rows in self.deletes
        )

    def digest(self) -> str:
        """Canonical SHA-1 of the change set (rows sorted per relation)."""
        h = hashlib.sha1()
        for tag, changes in ((b"+", self.inserts), (b"-", self.deletes)):
            for name, rows in sorted(changes):
                h.update(tag)
                h.update(name.encode())
                for row in sorted(rows):
                    h.update(b"\x01")
                    h.update("\x02".join(row).encode())
        return h.hexdigest()


@dataclass(frozen=True)
class DatabaseVersion:
    """One immutable snapshot in a version chain.

    Holding a ``DatabaseVersion`` pins its snapshot: the ``database`` it
    carries never changes, whatever deltas are applied to the store
    afterwards — that is the MVCC read side.
    """

    version: int
    fingerprint: str
    database: Database
    #: Bumps only when the schema or the active domain actually shifted —
    #: the service re-plans prepared queries on epoch changes only.
    plan_epoch: int
    #: The effective delta from the parent version (``None`` for the base).
    delta: Optional[Delta] = None
    #: Did this delta change ``adom(D)``? (``False`` for the base.)
    adom_changed: bool = False
    #: Did this delta add a relation to the schema? (``False`` for the base.)
    schema_changed: bool = False


def chained_fingerprint(parent_fingerprint: str, delta_digest: str) -> str:
    """The child version's fingerprint: hash-chained, O(|delta|) to derive."""
    return hashlib.sha1(
        f"{parent_fingerprint}:{delta_digest}".encode()
    ).hexdigest()


def _normalize_rows(
    relation: str, rows: Iterable[Union[str, Sequence[str]]], alphabet
) -> set[Row]:
    normalized: set[Row] = set()
    for row in rows:
        if isinstance(row, str):
            row = (row,)
        row = tuple(row)
        for s in row:
            alphabet.check_string(s)
        normalized.add(row)
    if normalized:
        lengths = {len(r) for r in normalized}
        if len(lengths) != 1:
            raise ArityError(
                f"delta rows for {relation!r} have mixed arities {lengths}"
            )
    return normalized


def evolve_database(
    database: Database,
    inserts: Mapping[str, frozenset[Row]],
    deletes: Mapping[str, frozenset[Row]],
    fingerprint: Optional[str] = None,
) -> Database:
    """Apply pre-normalized effective deltas to one snapshot, O(|delta|).

    Shares every untouched relation frozenset with ``database``; the
    active domain is recomputed from scratch only here when the caller
    has no refcounts (the shard coordinator evolving a partition) — the
    :class:`VersionedDatabase` path below maintains it incrementally.
    """
    relations = {name: database.relation(name) for name in database.relation_names}
    schema = database.schema
    new_names = {}
    for name, rows in inserts.items():
        if name not in relations:
            if not rows:
                continue
            new_names[name] = len(next(iter(rows)))
            relations[name] = frozenset()
        relations[name] = relations[name] | rows
    for name, rows in deletes.items():
        if name not in relations:
            raise DeltaError(f"cannot delete from unknown relation {name!r}")
        relations[name] = relations[name] - rows
    if new_names:
        arities = {n: schema.arity(n) for n in schema.relation_names}
        arities.update(new_names)
        schema = Schema(arities)
    adom: set[str] = set()
    for rows in relations.values():
        for row in rows:
            adom.update(row)
    return Database._evolved(
        database.alphabet, schema, relations, frozenset(adom), fingerprint
    )


class VersionedDatabase:
    """A mutable *view* over a chain of immutable database snapshots.

    Thread-safe: deltas are applied under a lock; readers grab
    :attr:`head` (one attribute read) and keep evaluating against that
    pinned snapshot no matter what is applied concurrently.

    Examples
    --------
    >>> from repro.strings import BINARY
    >>> from repro.database.instance import Database
    >>> vdb = VersionedDatabase(Database(BINARY, {"R": {("01",)}}))
    >>> v1 = vdb.insert("R", [("11",)])
    >>> sorted(vdb.head.database.relation("R"))
    [('01',), ('11',)]
    >>> vdb.version(0).database.relation("R")  # v0 snapshot is pinned
    frozenset({('01',)})
    """

    def __init__(
        self,
        database: Database,
        keep_versions: int = 64,
    ):
        if keep_versions < 1:
            raise DeltaError("keep_versions must be >= 1")
        self._lock = threading.Lock()
        self._keep = keep_versions
        base = DatabaseVersion(
            version=0,
            fingerprint=database_fingerprint(database),
            database=database,
            plan_epoch=0,
        )
        self._versions: dict[int, DatabaseVersion] = {0: base}
        self._head = base
        #: The version-0 fingerprint — stable for the wrapper's lifetime
        #: even after version 0 itself is pruned (plan-cache keying).
        self.base_fingerprint = base.fingerprint
        # Per-string occurrence refcounts across all relation tuples:
        # O(|delta|) adom maintenance on every apply.
        self._adom_counts: Counter[str] = Counter()
        for name in database.relation_names:
            for row in database.relation(name):
                self._adom_counts.update(row)
        from repro.delta.maintenance import track_version

        track_version(base.fingerprint)

    # ------------------------------------------------------------- reading

    @property
    def head(self) -> DatabaseVersion:
        """The newest version (new requests resolve against this)."""
        return self._head

    def version(self, number: int) -> DatabaseVersion:
        with self._lock:
            v = self._versions.get(number)
        if v is None:
            have = sorted(self._versions)
            raise DeltaError(
                f"version {number} is unknown or pruned (retained: {have})"
            )
        return v

    def versions(self) -> list[dict]:
        """Wire-friendly summaries of the retained versions, oldest first."""
        with self._lock:
            retained = sorted(self._versions.values(), key=lambda v: v.version)
        return [
            {
                "version": v.version,
                "fingerprint": v.fingerprint,
                "tuples": v.database.size,
                "adom_size": len(v.database.adom),
                "plan_epoch": v.plan_epoch,
                "delta_size": v.delta.size if v.delta is not None else 0,
            }
            for v in retained
        ]

    # ------------------------------------------------------------- writing

    def insert(
        self, relation: str, rows: Iterable[Union[str, Sequence[str]]]
    ) -> DatabaseVersion:
        """Apply an insert delta; returns the new head version."""
        return self.apply(inserts={relation: rows})

    def delete(
        self, relation: str, rows: Iterable[Union[str, Sequence[str]]]
    ) -> DatabaseVersion:
        """Apply a delete delta; returns the new head version."""
        return self.apply(deletes={relation: rows})

    def apply(
        self,
        inserts: Optional[Mapping[str, Iterable]] = None,
        deletes: Optional[Mapping[str, Iterable]] = None,
    ) -> DatabaseVersion:
        """Apply one combined delta atomically; returns the new head.

        Rows already present are not re-inserted and absent rows are not
        re-deleted (the recorded :class:`Delta` is the *effective*
        change); a delta that changes nothing returns the current head
        without creating a version.  Inserting into an unknown relation
        extends the schema (a ``plan_epoch`` bump); deleting from one is
        an error.
        """
        from repro.delta import maintenance

        with self._lock:
            parent = self._head
            db = parent.database
            alphabet = db.alphabet
            eff_ins: dict[str, frozenset[Row]] = {}
            eff_del: dict[str, frozenset[Row]] = {}
            new_relations: dict[str, int] = {}
            for name, rows in (inserts or {}).items():
                normalized = _normalize_rows(name, rows, alphabet)
                if name in db.schema:
                    arity = db.schema.arity(name)
                    if normalized and len(next(iter(normalized))) != arity:
                        raise ArityError(
                            f"insert into {name!r}/{arity} with arity "
                            f"{len(next(iter(normalized)))} rows"
                        )
                    effective = frozenset(normalized - db.relation(name))
                elif normalized:
                    new_relations[name] = len(next(iter(normalized)))
                    effective = frozenset(normalized)
                else:
                    continue
                if effective:
                    eff_ins[name] = effective
            for name, rows in (deletes or {}).items():
                if name not in db.schema:
                    raise DeltaError(
                        f"cannot delete from unknown relation {name!r}"
                    )
                if name in eff_ins:
                    raise DeltaError(
                        f"relation {name!r} appears in both inserts and "
                        "deletes of one delta; split into two deltas"
                    )
                normalized = _normalize_rows(name, rows, alphabet)
                effective = frozenset(normalized & db.relation(name))
                if effective:
                    eff_del[name] = effective
            if not eff_ins and not eff_del:
                METRICS.inc("delta.noops")
                return parent

            delta = Delta(
                inserts=tuple(sorted(eff_ins.items())),
                deletes=tuple(sorted(eff_del.items())),
            )
            # Adom maintenance from refcounts: O(|delta|), not O(|db|).
            added: set[str] = set()
            removed: set[str] = set()
            for rows in eff_ins.values():
                for row in rows:
                    for s in row:
                        self._adom_counts[s] += 1
                        if self._adom_counts[s] == 1:
                            added.add(s)
            for rows in eff_del.values():
                for row in rows:
                    for s in row:
                        self._adom_counts[s] -= 1
                        if self._adom_counts[s] == 0:
                            del self._adom_counts[s]
                            removed.add(s)
            adom_changed = bool(added or removed)

            relations = {
                name: db.relation(name) for name in db.relation_names
            }
            for name, rows in eff_ins.items():
                relations[name] = relations.get(name, frozenset()) | rows
            for name, rows in eff_del.items():
                relations[name] = relations[name] - rows
            schema = db.schema
            if new_relations:
                arities = {n: schema.arity(n) for n in schema.relation_names}
                arities.update(new_relations)
                schema = Schema(arities)
            adom = db.adom
            if adom_changed:
                adom = (adom | added) - removed
            fingerprint = chained_fingerprint(parent.fingerprint, delta.digest())
            child_db = Database._evolved(
                alphabet, schema, relations, adom, fingerprint
            )
            child = DatabaseVersion(
                version=parent.version + 1,
                fingerprint=fingerprint,
                database=child_db,
                plan_epoch=parent.plan_epoch
                + (1 if adom_changed or new_relations else 0),
                delta=delta,
                adom_changed=adom_changed,
                schema_changed=bool(new_relations),
            )
            self._versions[child.version] = child
            self._head = child
            while len(self._versions) > self._keep:
                # Prune oldest; pinned DatabaseVersion refs stay valid.
                del self._versions[min(self._versions)]

        maintenance.record_transition(
            maintenance.Transition(
                parent_fingerprint=parent.fingerprint,
                child_fingerprint=child.fingerprint,
                delta=delta,
                parent_db=parent.database,
                child_db=child.database,
                adom_changed=adom_changed,
                schema_changed=bool(new_relations),
            )
        )
        METRICS.inc("delta.versions")
        METRICS.inc(
            "delta.rows_inserted", sum(len(r) for r in eff_ins.values())
        )
        METRICS.inc(
            "delta.rows_deleted", sum(len(r) for r in eff_del.values())
        )
        return child
