"""Mutable databases: the MVCC delta store and incremental maintenance.

Everything in PRs 1–6 keys off immutable content-fingerprinted
snapshots; this package makes those snapshots *evolve* without going
cold.  :mod:`repro.delta.store` turns a database into a chain of
immutable versions under an ``insert``/``delete`` API (in-flight queries
pin their snapshot, new requests see the head), and
:mod:`repro.delta.maintenance` lets every cache layer answer for a new
version from work done on an ancestor — cache promotion for untouched
formulas and automata, classic ΔQ view-maintenance for algebra plans.

See ``docs/mutability.md`` for the full model.
"""

from repro.delta.maintenance import (
    Transition,
    maintain_algebra_result,
    promote_result,
    record_transition,
    subplan_recorder,
    track_version,
    transition_for,
)
from repro.delta.store import (
    MAX_CHAIN,
    DatabaseVersion,
    Delta,
    DeltaError,
    VersionedDatabase,
    chained_fingerprint,
    evolve_database,
)

__all__ = [
    "MAX_CHAIN",
    "DatabaseVersion",
    "Delta",
    "DeltaError",
    "Transition",
    "VersionedDatabase",
    "chained_fingerprint",
    "evolve_database",
    "maintain_algebra_result",
    "promote_result",
    "record_transition",
    "subplan_recorder",
    "track_version",
    "transition_for",
]
