"""Incremental cache maintenance across database versions (ΔQ rules).

The delta store (:mod:`repro.delta.store`) records every applied delta
as a :class:`Transition` in a process-wide registry.  This module is the
*consumer* side: given a cache miss keyed by a child version's
fingerprint, it tries to answer from work done on an ancestor version
instead of recomputing from scratch.  Three mechanisms, ordered from
cheapest to most involved:

**Result promotion** (:func:`promote_result`) — for the ``automata``
subformula cache and the ``direct-result`` / ``sharded-result`` whole
result caches.  A (sub)formula's value is a function of the relations it
mentions plus — when it has restricted (ADOM/PREFIX/LENGTH) quantifiers
— the active domain.  If the transition chain from an ancestor to the
queried version touches **neither**, the ancestor's cached entry is
copied to the child key verbatim.  In particular a delta that only
touches relation ``S`` leaves every automaton for subformulas over ``R``
valid, and database-*independent* subformula automata (keyed without a
fingerprint) were never invalidated in the first place — the automata
layer survives deltas; only the product with the changed relations is
redone.

**Subplan recording** — full algebra runs on a version-tracked database
record every physical operator's output rows in a bounded store keyed by
``(structure, plan node, version fingerprint)``.

**ΔQ plan maintenance** (:func:`maintain_algebra_result`) — on the next
version, each operator's new output is derived from its recorded rows
plus the child deltas of its inputs, using the classic incremental
view-maintenance rules for select / project / join / union / difference
(and exact rules for the paper's column-appending string operators,
which embed their input row in every output row and are therefore
injective).  Only tuples in the delta's "blast radius" are re-examined;
subtrees whose base relations are untouched promote wholesale.  The
rules are exact — the differential Hypothesis suite
(``tests/test_property_delta.py``) compares every maintained answer
against a from-scratch evaluation of the final state.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.algebra.exec import AlgebraExecutor, _is_semi_join, compile_for_execution
from repro.algebra.optimize import _rebuild, _Shim
from repro.algebra.plan import (
    AddFirstOp,
    AddLastOp,
    BaseRel,
    Difference,
    DownOp,
    EpsilonRel,
    InsertAtOp,
    Join,
    Plan,
    PrefixOp,
    Product,
    Project,
    Select,
    TrimFirstOp,
    Union,
    _get_checker,
)
from repro.database.instance import Database
from repro.delta.store import MAX_CHAIN, Delta
from repro.engine.cache import AutomatonCache, database_fingerprint
from repro.engine.deadline import checkpoint
from repro.engine.metrics import METRICS
from repro.logic.formulas import Formula, QuantKind
from repro.structures.base import StringStructure

__all__ = [
    "Transition",
    "maintain_algebra_result",
    "promote_result",
    "record_transition",
    "subplan_recorder",
    "track_version",
    "transition_for",
]

Row = tuple[str, ...]
Rows = frozenset

_EMPTY: Rows = frozenset()

#: Appending operators: output = input row + one derived column, so the
#: input row is recoverable from every output row (injective per input).
_APPENDERS = (PrefixOp, AddLastOp, AddFirstOp, TrimFirstOp, InsertAtOp, DownOp)


@dataclass(frozen=True)
class Transition:
    """One applied delta: parent version -> child version."""

    parent_fingerprint: str
    child_fingerprint: str
    delta: Delta
    parent_db: Database
    child_db: Database
    adom_changed: bool
    schema_changed: bool


# ------------------------------------------------------------- the registry


_LOCK = threading.RLock()
#: child fingerprint -> the transition that produced it (LRU-bounded).
_TRANSITIONS: OrderedDict[str, Transition] = OrderedDict()
_TRANSITIONS_CAP = 256
#: Fingerprints of versions managed by some VersionedDatabase — the
#: algebra backend only pays for subplan recording on tracked databases.
_TRACKED: OrderedDict[str, None] = OrderedDict()
_TRACKED_CAP = 1024


def record_transition(transition: Transition) -> None:
    """Register an applied delta (called by the delta store)."""
    with _LOCK:
        _TRANSITIONS[transition.child_fingerprint] = transition
        while len(_TRANSITIONS) > _TRANSITIONS_CAP:
            _TRANSITIONS.popitem(last=False)
    track_version(transition.parent_fingerprint)
    track_version(transition.child_fingerprint)


def transition_for(fingerprint: str) -> Optional[Transition]:
    """The transition that produced version ``fingerprint``, if recorded."""
    with _LOCK:
        return _TRANSITIONS.get(fingerprint)


def track_version(fingerprint: str) -> None:
    """Mark ``fingerprint`` as a delta-store version (enables recording)."""
    with _LOCK:
        _TRACKED[fingerprint] = None
        _TRACKED.move_to_end(fingerprint)
        while len(_TRACKED) > _TRACKED_CAP:
            _TRACKED.popitem(last=False)


def is_tracked(fingerprint: str) -> bool:
    with _LOCK:
        return fingerprint in _TRACKED


def reset() -> None:
    """Drop all transitions, tracking, and recorded subplan rows (tests)."""
    with _LOCK:
        _TRANSITIONS.clear()
        _TRACKED.clear()
        _STORE.clear()
        _NAMES.clear()


# -------------------------------------------------------- result promotion


def promote_result(
    cache: AutomatonCache,
    key: tuple,
    formula: Formula,
    metric: str = "delta.result_promotions",
) -> Optional[Any]:
    """Copy an ancestor version's cached entry to ``key`` when still valid.

    ``key`` is a :func:`repro.engine.cache.formula_key` tuple whose
    ``key[4]`` is the queried version's fingerprint.  Walking the
    transition chain toward the root, the ancestor entry is reusable as
    long as no walked delta touches a relation ``formula`` mentions and
    — when the formula has restricted quantifiers, whose domains derive
    from ``adom(D)`` — no walked delta changed the active domain.
    Returns the promoted value (also stored under ``key``) or ``None``.
    """
    with _LOCK:
        if not _TRANSITIONS:
            return None
    fingerprint = key[4]
    if fingerprint is None:
        return None
    relations = formula.relation_names()
    adom_sensitive = any(
        kind is not QuantKind.NATURAL for kind in formula.quantifier_kinds()
    )
    cursor = fingerprint
    for _ in range(MAX_CHAIN):
        transition = transition_for(cursor)
        if transition is None:
            return None
        if adom_sensitive and transition.adom_changed:
            return None
        if transition.delta.touched & relations:
            return None
        cursor = transition.parent_fingerprint
        value = cache.peek(key[:4] + (cursor,) + key[5:])
        if value is not None:
            cache.put(key, value)
            METRICS.inc(metric)
            return value
    return None


# ------------------------------------------------------- subplan recording


class _RowStore:
    """A small thread-safe LRU of per-operator output rows.

    Keys are ``((structure name, alphabet), plan node, fingerprint)`` —
    plan nodes are frozen dataclasses, hashable by structure.  Kept
    separate from the automaton cache so recorded intermediates never
    evict compiled automata and never distort the cache hit-rate stats.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._data: OrderedDict[tuple, Rows] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Optional[Rows]:
        with self._lock:
            rows = self._data.get(key)
            if rows is not None:
                self._data.move_to_end(key)
            return rows

    def put(self, key: tuple, rows: Rows) -> None:
        with self._lock:
            self._data[key] = rows
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_STORE = _RowStore()


def _structure_key(structure: StringStructure) -> tuple:
    return (structure.name, structure.alphabet.symbols)


def _recorder_into(
    structure: StringStructure, fingerprint: str
) -> Callable[[Plan, Rows], None]:
    skey = _structure_key(structure)

    def record(node: Plan, rows: Rows) -> None:
        _STORE.put((skey, node, fingerprint), rows)

    return record


def subplan_recorder(
    structure: StringStructure, database: Database
) -> Optional[Callable[[Plan, Rows], None]]:
    """A recorder for :class:`~repro.algebra.exec.AlgebraExecutor`, or
    ``None`` when ``database`` is not a delta-store version (recording
    would be pure overhead for never-mutated databases)."""
    with _LOCK:
        if not _TRACKED:
            return None
    fingerprint = database_fingerprint(database)
    if not is_tracked(fingerprint):
        return None
    return _recorder_into(structure, fingerprint)


# ----------------------------------------------------- ΔQ plan maintenance


#: Per-node base-relation names (bounded memo; plans are shared DAGs).
_NAMES: dict[Plan, frozenset] = {}


def _base_names(node: Plan) -> frozenset:
    names = _NAMES.get(node)
    if names is None:
        names = frozenset(
            n.name for n in node.walk() if isinstance(n, BaseRel)
        )
        if len(_NAMES) > 4096:
            _NAMES.clear()
        _NAMES[node] = names
    return names


class _Bail(Exception):
    """An operator shape the maintenance rules do not cover — fall back
    to a full run (never a wrong answer, just no incremental win)."""


def maintain_algebra_result(
    plan, database: Database
) -> Optional[tuple[tuple[str, ...], Rows]]:
    """Maintain a whole algebra result across the version chain, or ``None``.

    Called by the algebra backend on a whole-result cache miss.  Finds
    the nearest ancestor version whose root subplan rows were recorded,
    then applies each recorded transition's deltas through the plan tree
    with the ΔQ rules, storing every operator's rows at each intermediate
    version (so the *next* delta starts from here).  Returns
    ``(columns, rows)`` on success; ``None`` means "run it from scratch"
    (no recorded ancestor, a schema-changing delta in the chain, or an
    operator the rules do not cover).
    """
    with _LOCK:
        if not _TRANSITIONS:
            return None
    fingerprint = database_fingerprint(database)
    if transition_for(fingerprint) is None:
        return None
    compiled, optimized = compile_for_execution(
        plan.formula, plan.structure, database.schema, slack=plan.slack
    )
    skey = _structure_key(plan.structure)
    chain: list[Transition] = []
    cursor = fingerprint
    for _ in range(MAX_CHAIN):
        transition = transition_for(cursor)
        if transition is None:
            METRICS.inc("delta.algebra_fallbacks")
            return None
        if transition.schema_changed:
            # The compiled plan reads the child schema's relations; the
            # parent snapshot predates them.  Re-run from scratch.
            METRICS.inc("delta.algebra_fallbacks")
            return None
        chain.append(transition)
        cursor = transition.parent_fingerprint
        if _STORE.get((skey, optimized, cursor)) is not None:
            break
    else:
        METRICS.inc("delta.algebra_fallbacks")
        return None
    try:
        for transition in reversed(chain):
            _apply_transition(optimized, transition, plan.structure)
    except _Bail:
        METRICS.inc("delta.algebra_fallbacks")
        return None
    rows = _STORE.get((skey, optimized, fingerprint))
    if rows is None:  # evicted mid-walk under memory pressure
        METRICS.inc("delta.algebra_fallbacks")
        return None
    METRICS.inc("delta.algebra_maintained")
    return compiled.columns, rows


def _apply_transition(
    root: Plan, t: Transition, structure: StringStructure
) -> Rows:
    """Propagate one transition's deltas bottom-up through ``root``.

    Every visited node's ``(new, added, removed)`` is exact:
    ``added = new - old`` and ``removed = old - new`` as sets.  New rows
    are stored under the child fingerprint; rows an ancestor never
    recorded (store eviction) are recovered by evaluating that subplan
    on the pinned parent snapshot.
    """
    skey = _structure_key(structure)
    memo: dict[Plan, tuple[Rows, Rows, Rows]] = {}
    fallback: list[Optional[AlgebraExecutor]] = [None]

    def old_rows(node: Plan) -> Rows:
        rows = _STORE.get((skey, node, t.parent_fingerprint))
        if rows is not None:
            METRICS.inc("delta.subplan_hits")
            return rows
        METRICS.inc("delta.subplan_misses")
        if fallback[0] is None:
            fallback[0] = AlgebraExecutor(
                structure,
                t.parent_db,
                recorder=_recorder_into(structure, t.parent_fingerprint),
            )
        rows, _stats = fallback[0].run(node)
        return rows

    def settle(node: Plan, new: Rows, added: Rows, removed: Rows):
        result = (new, added, removed)
        memo[node] = result
        _STORE.put((skey, node, t.child_fingerprint), new)
        return result

    def keep(node: Plan):
        # Inputs unchanged: the node's rows carry over verbatim.
        return settle(node, old_rows(node), _EMPTY, _EMPTY)

    def maint(node: Plan):
        hit = memo.get(node)
        if hit is not None:
            return hit
        checkpoint()
        if isinstance(node, BaseRel):
            return settle(
                node,
                t.child_db.relation(node.name),
                t.delta.inserted(node.name),
                t.delta.deleted(node.name),
            )
        if not (_base_names(node) & t.delta.touched):
            return keep(node)
        if isinstance(node, Select) and isinstance(node.child, Product):
            return _filtered_cross(node)
        if _is_semi_join(node):
            return _semi_join(node)
        if isinstance(node, Select):
            return _select(node)
        if isinstance(node, Project):
            return _project(node)
        if isinstance(node, Join):
            return _join(node)
        if isinstance(node, Union):
            return _union(node)
        if isinstance(node, Difference):
            return _difference(node)
        if isinstance(node, Product):
            return _product(node)
        if isinstance(node, _APPENDERS):
            return _append(node)
        if isinstance(node, EpsilonRel):  # constant; unreachable (no names)
            return keep(node)
        raise _Bail(f"no maintenance rule for {type(node).__name__}")

    # -- per-operator ΔQ rules -------------------------------------------

    def _select(node: Select):
        cn, ca, cr = maint(node.child)
        if not ca and not cr:
            return keep(node)
        checker = _get_checker(node.condition, structure)
        added = frozenset(r for r in ca if checker.check(r))
        removed = frozenset(r for r in cr if checker.check(r))
        return settle(node, (old_rows(node) - removed) | added, added, removed)

    def _project(node: Project):
        cn, ca, cr = maint(node.child)
        if not ca and not cr:
            return keep(node)
        old = old_rows(node)
        indices = node.indices
        added = frozenset(
            tuple(r[i] for i in indices) for r in ca
        ) - old
        candidates = {tuple(r[i] for i in indices) for r in cr}
        if candidates:
            # A projection disappears only when *every* supporting child
            # row is gone: discharge candidates still supported by the
            # new child rows (one linear scan, early exit).
            for r in cn:
                p = tuple(r[i] for i in indices)
                if p in candidates:
                    candidates.discard(p)
                    if not candidates:
                        break
        removed = frozenset(candidates)
        return settle(node, (old - removed) | added, added, removed)

    def _semi_join(node: Project):
        join: Join = node.child  # type: ignore[assignment]
        ln, la, lr = maint(join.left)
        rn, ra, rr = maint(join.right)
        if not (la or lr or ra or rr):
            return keep(node)
        # The semi-join is linear in its inputs, so recompute it from the
        # children's new rows (never materializing the join) and diff.
        keys = {tuple(r[j] for _, j in join.pairs) for r in rn}
        new = frozenset(
            tuple(l[i] for i in node.indices)
            for l in ln
            if tuple(l[i] for i, _ in join.pairs) in keys
        )
        old = old_rows(node)
        return settle(node, new, new - old, old - new)

    def _join(node: Join):
        ln, la, lr = maint(node.left)
        rn, ra, rr = maint(node.right)
        if not (la or lr or ra or rr):
            return keep(node)
        old = old_rows(node)
        k = node.left.arity
        removed = (
            frozenset(row for row in old if row[:k] in lr or row[k:] in rr)
            if (lr or rr)
            else _EMPTY
        )
        checker = (
            _get_checker(node.residual, structure)
            if node.residual is not None
            else None
        )
        out: set[Row] = set()
        _join_into(out, la, rn, node.pairs, checker)  # ΔL ⋈ new R
        _join_into(out, ln, ra, node.pairs, checker)  # new L ⋈ ΔR
        added = frozenset(out)
        return settle(node, (old - removed) | added, added, removed)

    def _union(node: Union):
        ln, la, lr = maint(node.left)
        rn, ra, rr = maint(node.right)
        if not (la or lr or ra or rr):
            return keep(node)
        old = old_rows(node)
        added = frozenset(r for r in (la | ra) if r not in old)
        removed = frozenset(
            r for r in (lr | rr) if r not in ln and r not in rn
        )
        return settle(node, (old - removed) | added, added, removed)

    def _difference(node: Difference):
        ln, la, lr = maint(node.left)
        rn, ra, rr = maint(node.right)
        if not (la or lr or ra or rr):
            return keep(node)
        old = old_rows(node)
        added: set[Row] = set()
        removed: set[Row] = set()
        for r in la | lr | ra | rr:  # membership can only change here
            now = r in ln and r not in rn
            was = r in old
            if now and not was:
                added.add(r)
            elif was and not now:
                removed.add(r)
        return settle(
            node,
            (old - frozenset(removed)) | frozenset(added),
            frozenset(added),
            frozenset(removed),
        )

    def _product(node: Product):
        ln, la, lr = maint(node.left)
        rn, ra, rr = maint(node.right)
        if not (la or lr or ra or rr):
            return keep(node)
        old = old_rows(node)
        k = node.left.arity
        removed = (
            frozenset(row for row in old if row[:k] in lr or row[k:] in rr)
            if (lr or rr)
            else _EMPTY
        )
        out: set[Row] = set()
        for l in la:
            for r in rn:
                out.add(l + r)
        if ra:
            for l in ln - la:
                for r in ra:
                    out.add(l + r)
        added = frozenset(out)
        return settle(node, (old - removed) | added, added, removed)

    def _filtered_cross(node: Select):
        prod: Product = node.child  # type: ignore[assignment]
        ln, la, lr = maint(prod.left)
        rn, ra, rr = maint(prod.right)
        if not (la or lr or ra or rr):
            return keep(node)
        old = old_rows(node)
        k = prod.left.arity
        removed = (
            frozenset(row for row in old if row[:k] in lr or row[k:] in rr)
            if (lr or rr)
            else _EMPTY
        )
        # Only delta x new and old x delta pairs pass the (possibly
        # automaton-backed) condition check — the O(|L|*|R|) re-filter
        # the full run would pay is avoided.
        checker = _get_checker(node.condition, structure)
        out: set[Row] = set()
        tick = 0
        for l in la:
            for r in rn:
                tick += 1
                if not tick & 255:
                    checkpoint()
                row = l + r
                if checker.check(row):
                    out.add(row)
        if ra:
            for l in ln - la:
                for r in ra:
                    tick += 1
                    if not tick & 255:
                        checkpoint()
                    row = l + r
                    if checker.check(row):
                        out.add(row)
        added = frozenset(out)
        return settle(node, (old - removed) | added, added, removed)

    def _append(node: Plan):
        cn, ca, cr = maint(node.children()[0])
        if not ca and not cr:
            return keep(node)
        # Appending operators keep the input row in every output row, so
        # deltas map through exactly: outputs of removed inputs vanish,
        # outputs of added inputs are new.
        added = _apply_operator(node, ca)
        removed = _apply_operator(node, cr)
        return settle(node, (old_rows(node) - removed) | added, added, removed)

    def _apply_operator(node: Plan, rows: Rows) -> Rows:
        if not rows:
            return _EMPTY
        shim = _rebuild(node, [_Shim(rows, node.children()[0].arity)])
        return shim.evaluate(t.child_db, structure)

    new_root, _, _ = maint(root)
    return new_root


def _join_into(
    out: set,
    lrows: Rows,
    rrows: Rows,
    pairs: tuple[tuple[int, int], ...],
    checker,
) -> None:
    """Hash-join ``lrows ⋈ rrows`` into ``out`` (residual check applied)."""
    if not lrows or not rrows:
        return
    table: dict[Row, list[Row]] = {}
    for r in rrows:
        table.setdefault(tuple(r[j] for _, j in pairs), []).append(r)
    tick = 0
    for l in lrows:
        matches = table.get(tuple(l[i] for i, _ in pairs))
        if not matches:
            continue
        for r in matches:
            tick += 1
            if not tick & 255:
                checkpoint()
            row = l + r
            if checker is None or checker.check(row):
                out.add(row)
