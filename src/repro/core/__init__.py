"""Public API facade."""

from repro.core.query import (
    Query,
    StringDatabase,
    Table,
    definable_language,
    language_is_star_free,
    parse_query,
)

__all__ = [
    "Query",
    "StringDatabase",
    "Table",
    "definable_language",
    "language_is_star_free",
    "parse_query",
]
