"""The high-level public API: :class:`Query` and helpers.

A :class:`Query` bundles a formula with the structure (language) it is
written in, and exposes the library's capabilities as methods::

    from repro import Query, StringDatabase

    db = StringDatabase("01", {"R": {"0110", "001"}})
    q = Query("R(x) & last(x, '0')", structure="S")
    q.run(db).rows()            # evaluate (exact, automata engine)
    q.is_safe_on(db)            # Proposition 7
    q.range_restricted()        # Theorem 3 / 7
    q.to_algebra(db.schema)     # Theorem 4 / 8
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Optional, Union

from repro.algebra.compile import CompiledQuery, compile_query
from repro.automata.aperiodic import is_star_free
from repro.automata.dfa import DFA
from repro.database.instance import Database
from repro.database.schema import Schema
from repro.engine.backend import resolve_engine
from repro.engine.cache import global_cache
from repro.engine.deadline import deadline_scope
from repro.engine.explain import Explain, execute_plan, explain_query
from repro.engine.planner import Plan, Planner
from repro.errors import EvaluationError
from repro.eval.automata_engine import AutomataEngine
from repro.eval.result import QueryResult
from repro.logic.formulas import Formula
from repro.logic.parser import parse_formula
from repro.safety.range_restriction import RangeRestrictedQuery, range_restrict
from repro.safety.state_safety import SafetyReport, analyze_state_safety
from repro.strings.alphabet import Alphabet, BINARY
from repro.structures.base import StringStructure
from repro.structures.catalog import by_name


class StringDatabase:
    """A database of string relations (thin, friendly wrapper).

    Parameters
    ----------
    alphabet:
        An :class:`Alphabet` or a string of its symbols (``"01"``).
    relations:
        Mapping from relation names to collections of tuples (or bare
        strings for unary relations).
    """

    def __init__(
        self,
        alphabet: Union[Alphabet, str],
        relations: Mapping[str, Iterable],
        schema: Optional[Schema] = None,
    ):
        if isinstance(alphabet, str):
            alphabet = Alphabet(alphabet)
        self.db = Database(alphabet, relations, schema=schema)

    @property
    def alphabet(self) -> Alphabet:
        return self.db.alphabet

    @property
    def schema(self) -> Schema:
        return self.db.schema

    @property
    def adom(self) -> frozenset[str]:
        return self.db.adom

    def width(self) -> int:
        return self.db.width()

    def __repr__(self) -> str:
        return f"StringDatabase({self.db!r})"


@dataclass(frozen=True)
class Table:
    """A finite query answer with named columns."""

    columns: tuple[str, ...]
    rows_set: frozenset[tuple[str, ...]]

    def rows(self) -> list[tuple[str, ...]]:
        return sorted(self.rows_set)

    def __len__(self) -> int:
        return len(self.rows_set)

    def __contains__(self, row) -> bool:
        return tuple(row) in self.rows_set

    def __iter__(self):
        return iter(self.rows())


class Query:
    """A query in one of the paper's calculi.

    Parameters
    ----------
    source:
        Query text (see :mod:`repro.logic.parser` for the syntax) or an
        already-built :class:`~repro.logic.formulas.Formula`.
    structure:
        ``"S"``, ``"S_left"``, ``"S_reg"`` or ``"S_len"`` — or a
        :class:`StringStructure` instance.  The signature is enforced.
    alphabet:
        Alphabet (defaults to binary); ignored when ``structure`` is an
        instance.
    """

    def __init__(
        self,
        source: Union[str, Formula],
        structure: Union[str, StringStructure] = "S",
        alphabet: Union[Alphabet, str] = BINARY,
    ):
        if isinstance(alphabet, str):
            alphabet = Alphabet(alphabet)
        if isinstance(structure, str):
            structure = by_name(structure, alphabet)
        self.structure = structure
        self.formula = parse_formula(source) if isinstance(source, str) else source
        self.structure.check_formula(self.formula)

    @property
    def free_variables(self) -> tuple[str, ...]:
        return tuple(sorted(self.formula.free_variables()))

    def __repr__(self) -> str:
        return f"Query({str(self.formula)!r}, structure={self.structure.name})"

    # ------------------------------------------------------------- running

    def run(
        self,
        database: Union[StringDatabase, Database],
        engine: Optional[str] = None,
        slack: Optional[int] = None,
        limit: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Table:
        """Evaluate and materialize the answer.

        With no ``engine=`` argument (or ``engine="auto"``) the
        cost-based planner (:mod:`repro.engine.planner`) selects the
        engine; ``Query.plan(db)`` / ``Query.explain(db)`` show the
        choice and why.  ``engine="automata"`` forces the exact reference
        engine (handles natural quantifiers, detects infinite outputs);
        ``engine="direct"`` forces collapsed enumeration (polynomial data
        complexity for the PREFIX-collapsing calculi);
        ``engine="algebra"`` forces the set-at-a-time RA(M) executor
        (hash joins, see ``docs/algebra_engine.md``) on the collapsed
        formula.  Raises :class:`~repro.errors.UnsafeQueryError` on
        infinite output unless a ``limit`` is given.

        ``timeout`` is a wall-clock budget in seconds covering evaluation
        *and* materialization; past it the engines cancel cooperatively
        and raise :class:`~repro.errors.EvaluationTimeout` (see
        :mod:`repro.engine.deadline`) instead of disappearing into a
        pathological automata product.
        """
        with deadline_scope(timeout):
            result = self.result(database, engine=engine, slack=slack)
            if limit is not None and not result.is_finite():
                rows = frozenset(result.tuples(limit=limit))
            else:
                rows = result.as_set()
            return Table(result.variables, rows)

    def result(
        self,
        database: Union[StringDatabase, Database],
        engine: Optional[str] = None,
        slack: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> QueryResult:
        """Evaluate, returning the (possibly infinite) :class:`QueryResult`.

        ``engine`` is ``None``/``"auto"`` (planner-selected),
        ``"automata"``, ``"direct"``, or ``"algebra"``.  ``slack`` is the
        restricted-quantifier headroom.  The automata engine only uses it
        for explicitly PREFIX/LENGTH-restricted quantifiers (default 0);
        the planner passes the same value to whichever engine it picks,
        and only auto-selects the algebra engine in its provably
        slack-independent regime, so auto-selection never changes the
        answer.  A *forced* direct or algebra engine collapses natural
        quantifiers first and defaults to slack 1 — the enumeration cost
        grows as ``|Sigma|^slack``, so raise it deliberately (the
        theoretically safe bound is ``2^quantifier_rank``; see
        :func:`repro.eval.collapse.default_slack`).

        ``timeout`` bounds planning plus evaluation in wall-clock seconds,
        raising :class:`~repro.errors.EvaluationTimeout` once exceeded.

        Compiled automata are memoized in the session-wide
        :func:`~repro.engine.cache.global_cache`, so repeated runs (and
        shared subformulas) are cheap; ``Query.explain(db)`` reports the
        hit/miss counters.
        """
        db = database.db if isinstance(database, StringDatabase) else database
        with deadline_scope(timeout):
            plan = Planner(self.structure, db).plan(
                self.formula, slack=slack, force=resolve_engine(engine)
            )
            return execute_plan(plan, db, cache=global_cache())

    def plan(
        self,
        database: Union[StringDatabase, Database],
        engine: Optional[str] = None,
        slack: Optional[int] = None,
    ) -> Plan:
        """The planner's decision for this query on ``database`` (no run)."""
        db = database.db if isinstance(database, StringDatabase) else database
        return Planner(self.structure, db).plan(
            self.formula, slack=slack, force=resolve_engine(engine)
        )

    def explain(
        self,
        database: Union[StringDatabase, Database],
        engine: Optional[str] = None,
        slack: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Explain:
        """Run with tracing and return the annotated EXPLAIN report.

        The report bundles the plan (engine choice, cost estimates), a
        tree annotated with per-node wall time and automaton state /
        transition counts, the metrics-counter delta of this run, and the
        automaton-cache statistics.  See ``docs/explain_and_metrics.md``.
        ``timeout`` bounds the traced run like :meth:`run`'s.
        """
        db = database.db if isinstance(database, StringDatabase) else database
        return explain_query(
            self.formula, self.structure, db, engine=resolve_engine(engine),
            slack=slack, timeout=timeout,
        )

    def decide(
        self,
        database: Union[StringDatabase, Database],
        engine: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> bool:
        """Truth value of a Boolean query (sentence).

        Goes through the planner like :meth:`result` — forced/auto engine
        selection, metrics, caching, and deadline scopes all apply to
        Boolean queries too (historically this constructed the automata
        engine directly, bypassing all of that).
        """
        if self.formula.free_variables():
            raise EvaluationError(
                "decide() needs a Boolean query (sentence); "
                f"{sorted(self.formula.free_variables())} are free — "
                "use run() or result() for queries with output columns"
            )
        return self.result(database, engine=engine, timeout=timeout).as_bool()

    # -------------------------------------------------------------- safety

    def is_safe_on(self, database: Union[StringDatabase, Database]) -> bool:
        """State-safety (Proposition 7)."""
        return self.safety_report(database).safe

    def safety_report(self, database: Union[StringDatabase, Database]) -> SafetyReport:
        db = database.db if isinstance(database, StringDatabase) else database
        return analyze_state_safety(self.formula, self.structure, db)

    def range_restricted(self, slack: Optional[int] = None) -> RangeRestrictedQuery:
        """The Theorem 3/7 range-restricted version ``(gamma, phi)``."""
        return range_restrict(self.formula, self.structure, slack=slack)

    # ------------------------------------------------------------- algebra

    def to_algebra(self, schema: Schema, slack: int = 1) -> CompiledQuery:
        """Compile to the matching relational algebra (Theorem 4/8)."""
        return compile_query(self.formula, self.structure, schema, slack=slack)


def parse_query(
    text: str,
    structure: Union[str, StringStructure] = "S",
    alphabet: Union[Alphabet, str] = BINARY,
) -> Query:
    """Parse query text into a :class:`Query` (convenience alias)."""
    return Query(text, structure=structure, alphabet=alphabet)


def definable_language(
    query: Query, max_probe: int = 0
) -> DFA:
    """The subset of ``Sigma*`` a database-free unary query defines.

    Sections 4 and 7 of the paper: over S and S_left these are exactly the
    star-free languages, over S_reg and S_len exactly the regular ones —
    check with :func:`repro.automata.is_star_free` on the returned DFA.
    """
    if query.formula.relation_names():
        raise EvaluationError("definable_language needs a database-free query")
    free = query.free_variables
    if len(free) != 1:
        raise EvaluationError("definable_language needs exactly one free variable")
    empty_db = Database(query.structure.alphabet, {})
    result = AutomataEngine(query.structure, empty_db).run(query.formula)
    # Convert the unary convolution automaton to a plain character DFA.
    return result.relation.dfa.map_symbols(lambda col: col[0]).minimize()


def language_is_star_free(query: Query) -> bool:
    """Is the language defined by a unary database-free query star-free?"""
    return is_star_free(definable_language(query))
