"""Query analyses beyond safety: genericity (Corollary 3)."""

from repro.analysis.genericity import (
    all_alphabet_permutations,
    apply_symbol_permutation,
    commutes_with_permutation,
    genericity_evidence,
    permute_database,
)

__all__ = [
    "all_alphabet_permutations",
    "apply_symbol_permutation",
    "commutes_with_permutation",
    "genericity_evidence",
    "permute_database",
]
