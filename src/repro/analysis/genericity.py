"""Genericity (Corollaries 3 and 7): queries that ignore string identity.

A query is *generic* if it commutes with permutations of the domain; the
paper proves every generic RC(S)/RC(S_left)/RC(S_reg) query is already
expressible in plain relational calculus over ordered databases (the
active generic collapse).  Genericity itself is undecidable, but the
observable half — "does this query commute with this permutation on this
database?" — is checkable, and failures *certify* non-genericity.

The natural domain permutations of ``Sigma*`` compatible with the string
structure are induced by permutations of the alphabet (they preserve
prefix ordering and lengths while renaming symbols).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.database.instance import Database
from repro.errors import AlphabetError
from repro.eval.automata_engine import AutomataEngine
from repro.logic.formulas import Formula
from repro.structures.base import StringStructure


def apply_symbol_permutation(s: str, mapping: Mapping[str, str]) -> str:
    """Rename every symbol of ``s`` through ``mapping``."""
    return "".join(mapping[c] for c in s)


def permute_database(db: Database, mapping: Mapping[str, str]) -> Database:
    """The image database under an alphabet permutation."""
    if set(mapping) != set(db.alphabet.symbols) or set(mapping.values()) != set(
        db.alphabet.symbols
    ):
        raise AlphabetError("mapping must permute the database's alphabet")
    relations = {
        name: [
            tuple(apply_symbol_permutation(s, mapping) for s in row)
            for row in db.relation(name)
        ]
        for name in db.relation_names
    }
    return Database(db.alphabet, relations, schema=db.schema)


def commutes_with_permutation(
    formula: Formula,
    structure: StringStructure,
    db: Database,
    mapping: Mapping[str, str],
) -> bool:
    """Does ``phi(pi(D)) = pi(phi(D))`` for this permutation and database?

    ``True`` is evidence of genericity; ``False`` certifies the query is
    **not** generic (it inspects concrete symbols — as every interesting
    string query does; that is the paper's point in Corollary 3: the
    string power of RC(S) lives entirely in its non-generic queries).
    """
    original = AutomataEngine(structure, db).run(formula)
    permuted_db = permute_database(db, mapping)
    permuted = AutomataEngine(structure, permuted_db).run(formula)
    if not original.is_finite() or not permuted.is_finite():
        # Compare the (regular) outputs through membership of the image:
        # sample-free exact check via automata equivalence after renaming.
        renamed = _rename_relation(original, mapping)
        return renamed.equivalent(permuted.relation)
    image = {
        tuple(apply_symbol_permutation(s, mapping) for s in row)
        for row in original.as_set()
    }
    return image == permuted.as_set()


def _rename_relation(result, mapping: Mapping[str, str]):
    """Rename symbols inside a result's convolution automaton."""
    from repro.automatic.convolution import PAD

    def rename_col(col):
        return tuple(PAD if x is PAD else mapping[x] for x in col)

    dfa = result.relation.dfa.map_symbols(rename_col)
    from repro.automatic.relation import RelationAutomaton

    return RelationAutomaton(
        result.relation.alphabet, result.relation.arity, dfa, normalized=True
    )


def all_alphabet_permutations(symbols: Sequence[str]):
    """Every permutation of the alphabet, as symbol mappings."""
    import itertools

    for perm in itertools.permutations(symbols):
        yield dict(zip(symbols, perm))


def genericity_evidence(
    formula: Formula,
    structure: StringStructure,
    databases: Sequence[Database],
) -> tuple[bool, dict | None]:
    """Check all permutations across all databases.

    Returns ``(all_commute, counterexample_mapping_or_None)``; a failing
    mapping proves non-genericity, while success is (only) evidence.
    """
    for db in databases:
        for mapping in all_alphabet_permutations(db.alphabet.symbols):
            if not commutes_with_permutation(formula, structure, db, mapping):
                return False, mapping
    return True, None
