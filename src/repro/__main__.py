"""Command-line interface: run string-calculus queries against JSON databases.

Usage::

    python -m repro run "R(x) & last(x, '0')" --db db.json
    python -m repro run "el(x, y)" --db db.json --structure S_len --limit 5
    python -m repro run "R(x)" --db db.json --engine direct   # force an engine
    python -m repro explain "R(x) & last(x, '0')" --db db.json
    python -m repro explain "R(x)" --db db.json --json        # machine-readable
    python -m repro safety "last(x, '0')" --db db.json
    python -m repro sql "SELECT r.1 FROM R r WHERE r.1 LIKE '0%'" --db db.json
    python -m repro language "matches(x, '(00)*')" --structure S_reg
    python -m repro run "R(x)" --db db.json --shards 4   # scatter-gather pool
    python -m repro explain "R(x)" --db db.json --shards 2  # shard decomposition
    python -m repro serve --stdio --db main=db.json    # NDJSON query service
    python -m repro serve --shards 4 --db main=db.json # sharded service

A running service accepts live data changes over the protocol — the
``insert`` / ``delete`` verbs evolve a registered database through the
MVCC delta store (O(|delta|) per change, caches maintained
incrementally; see ``docs/mutability.md``), ``db_versions`` lists the
retained snapshots, and ``unregister_db`` drops a name.

``run`` auto-selects the evaluation engine through the cost-based planner
(:mod:`repro.engine`); pass ``--engine automata|direct|algebra`` to
override.
``explain`` prints the plan tree — chosen engine, cost estimates, per-node
wall time, automaton state/transition counts, and automaton-cache hit
counters (see ``docs/explain_and_metrics.md``).

Database JSON format::

    {"alphabet": "01", "relations": {"R": [["0110"], ["001"]]}}
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import Query, StringDatabase
from repro.core.query import definable_language, language_is_star_free
from repro.engine.backend import backend_names
from repro.errors import EvaluationTimeout, ReproError, UnsafeQueryError
from repro.eval import DirectEngine
from repro.sql import translate_select
from repro.structures import by_name
from repro.strings import Alphabet


class DatabaseFileError(ReproError):
    """The ``--db`` file is missing, unreadable, or not valid database JSON."""


def load_database(path: str) -> StringDatabase:
    try:
        with open(path) as f:
            spec = json.load(f)
    except OSError as exc:
        reason = exc.strerror or str(exc)
        raise DatabaseFileError(
            f"cannot read database file {path!r}: {reason}"
        ) from None
    except json.JSONDecodeError as exc:
        raise DatabaseFileError(
            f"database file {path!r} is not valid JSON: {exc}"
        ) from None
    if not isinstance(spec, dict):
        raise DatabaseFileError(
            f"database file {path!r} must hold a JSON object "
            '{"alphabet": ..., "relations": ...}'
        )
    relations_spec = spec.get("relations", {})
    if not isinstance(relations_spec, dict):
        raise DatabaseFileError(
            f"database file {path!r}: \"relations\" must be an object "
            "mapping names to lists of rows"
        )
    relations = {}
    for name, rows in relations_spec.items():
        if not isinstance(rows, list):
            raise DatabaseFileError(
                f"database file {path!r}: relation {name!r} must be a list of rows"
            )
        try:
            relations[name] = [
                (row,) if isinstance(row, str) else tuple(row) for row in rows
            ]
        except TypeError:
            raise DatabaseFileError(
                f"database file {path!r}: relation {name!r} has a non-row entry"
            ) from None
    schema_spec = spec.get("schema")
    schema = None
    if schema_spec is not None:
        from repro.database.schema import Schema

        if not isinstance(schema_spec, dict) or not all(
            isinstance(a, int) and not isinstance(a, bool)
            for a in schema_spec.values()
        ):
            raise DatabaseFileError(
                f"database file {path!r}: \"schema\" must map relation "
                "names to integer arities"
            )
        schema = Schema(schema_spec)
    return StringDatabase(spec.get("alphabet", "01"), relations, schema=schema)


def _shard_scope(args: argparse.Namespace, db: StringDatabase):
    """An ephemeral shard pool for one CLI invocation (``--shards N``).

    Registers the query's database on a fresh coordinator so the planner
    can (or, with ``--engine sharded``, must) scatter-gather; a plain
    no-op context when ``--shards`` was not given.
    """
    import contextlib

    if not getattr(args, "shards", None):
        return contextlib.nullcontext()

    @contextlib.contextmanager
    def scope():
        from repro.shard import ShardCoordinator

        with ShardCoordinator(
            shards=args.shards, scheme=args.shard_scheme
        ) as coordinator:
            coordinator.register_database("cli", db)
            yield coordinator

    return scope()


def _check_relations(q: Query, db: StringDatabase) -> None:
    missing = sorted(set(q.formula.relation_names()) - set(db.db.relation_names))
    if missing:
        have = ", ".join(sorted(db.db.relation_names)) or "none"
        raise ReproError(
            f"query mentions relation(s) {', '.join(missing)} "
            f"not present in the database (has: {have})"
        )


def cmd_run(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    q = Query(args.query, structure=args.structure, alphabet=db.alphabet)
    _check_relations(q, db)
    with _shard_scope(args, db):
        table = q.run(
            db,
            engine=args.engine,
            limit=args.limit,
            timeout=args.timeout,
        )
    if args.stream:
        # Emit the answer in the protocol's streamed wire shape — the
        # same row_batch/done NDJSON frames a TCP client sees, so shell
        # pipelines can consume large answers incrementally.
        from repro.service.protocol import stream_frames
        from repro.service.service import ServiceResponse

        response = ServiceResponse(
            ok=True,
            columns=list(table.columns),
            rows=[list(row) for row in table],
            engine=args.engine,
            finite=args.limit is None,
        )
        for frame in stream_frames(None, response, args.page_size):
            frame.pop("id", None)
            print(json.dumps(frame))
        return 0
    print("\t".join(table.columns))
    for row in table:
        print("\t".join(row))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    q = Query(args.query, structure=args.structure, alphabet=db.alphabet)
    _check_relations(q, db)
    with _shard_scope(args, db):
        report = q.explain(db, engine=args.engine, timeout=args.timeout)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def cmd_safety(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    q = Query(args.query, structure=args.structure, alphabet=db.alphabet)
    report = q.safety_report(db)
    if report.safe:
        print(f"SAFE: finite output with {report.output_size} tuples")
    else:
        sample = [t for t in report.result.tuples(limit=3)]
        print(f"UNSAFE: infinite output; sample {sample}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    translated = translate_select(args.query, db.schema)
    print(f"-- calculus ({translated.structure_name}): {translated.formula}",
          file=sys.stderr)
    structure = by_name(translated.structure_name, db.alphabet)
    result = DirectEngine(structure, db.db).run(translated.formula)
    mapping = {v: i for i, v in enumerate(result.variables)}
    print("\t".join(translated.output_variables))
    for row in sorted(result.as_set()):
        print("\t".join(row[mapping[v]] for v in translated.output_variables))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service package starts threads on construction
    # and the other subcommands never need it.
    from repro.service import QueryService, ServiceConfig, serve_stdio, serve_tcp

    config = ServiceConfig(
        workers=args.workers,
        max_pending=args.queue_size,
        backpressure=args.backpressure,
        default_timeout=args.default_timeout,
        shards=args.shards,
        shard_scheme=args.shard_scheme,
        warm_dir=args.warm_dir,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
    )
    service = QueryService(config)
    for spec in args.db or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise ReproError(f"--db expects NAME=FILE, got {spec!r}")
        service.register_database(name, load_database(path))
    if args.stdio:
        return serve_stdio(service)
    server = serve_tcp(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    sharding = f", {config.shards} shards" if config.shards else ""
    print(f"serving on {host}:{port} "
          f"({config.workers} workers, queue {config.max_pending}, "
          f"{config.backpressure}{sharding})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close_service()
    return 0


def cmd_language(args: argparse.Namespace) -> int:
    alphabet = Alphabet(args.alphabet)
    q = Query(args.query, structure=args.structure, alphabet=alphabet)
    dfa = definable_language(q)
    star_free = language_is_star_free(q)
    print(f"minimal DFA: {dfa.num_states} states")
    print(f"star-free: {star_free}")
    print(f"finite: {dfa.is_finite_language()}")
    sample = list(dfa.iter_strings(max_length=4))[:10]
    print(f"sample (len<=4): {sample}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="String-calculus queries (PODS 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_db=True):
        p.add_argument("query")
        if with_db:
            p.add_argument("--db", required=True, help="JSON database file")
        p.add_argument(
            "--structure",
            default="S",
            choices=["S", "S_left", "S_reg", "S_len", "S_insert"],
        )

    p_run = sub.add_parser("run", help="evaluate a calculus query")
    common(p_run)
    # Engine names come from the backend registry, not a hardcoded list:
    # unknown names are rejected by the registry itself with the full
    # list of registered backends (clean exit-1 error).
    engines = ", ".join(backend_names())
    p_run.add_argument(
        "--engine",
        default="auto",
        metavar="ENGINE",
        help=f"evaluation engine: auto (cost-based planner) or one of {engines}",
    )
    p_run.add_argument("--limit", type=int, default=None,
                       help="sample size for infinite outputs")
    p_run.add_argument("--shards", type=int, default=0, metavar="N",
                       help="evaluate over an ephemeral pool of N shard "
                            "worker processes (see docs/sharding.md)")
    p_run.add_argument("--shard-scheme", choices=["hash", "relation"],
                       default="hash", dest="shard_scheme",
                       help="partitioning scheme for --shards")
    p_run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; exceeded -> clean timeout error (exit 3)",
    )
    p_run.add_argument(
        "--stream", action="store_true",
        help="emit NDJSON row_batch/done frames (the service's streamed "
             "wire shape) instead of a TSV table",
    )
    p_run.add_argument(
        "--page-size", type=int, default=256, dest="page_size",
        metavar="N", help="rows per row_batch frame with --stream",
    )
    p_run.set_defaults(func=cmd_run)

    p_explain = sub.add_parser(
        "explain",
        help="show the evaluation plan: engine choice, timings, cache/automata metrics",
    )
    common(p_explain)
    p_explain.add_argument(
        "--engine",
        default="auto",
        metavar="ENGINE",
        help=f"force an engine ({engines}) instead of the planner's choice",
    )
    p_explain.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_explain.add_argument("--shards", type=int, default=0, metavar="N",
                           help="plan against an ephemeral pool of N shard "
                                "workers and show the shard decomposition")
    p_explain.add_argument("--shard-scheme", choices=["hash", "relation"],
                           default="hash", dest="shard_scheme",
                           help="partitioning scheme for --shards")
    p_explain.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; exceeded -> clean timeout error (exit 3)",
    )
    p_explain.set_defaults(func=cmd_explain)

    p_safety = sub.add_parser("safety", help="decide state-safety (Prop 7)")
    common(p_safety)
    p_safety.set_defaults(func=cmd_safety)

    p_sql = sub.add_parser("sql", help="run a mini-SQL SELECT")
    p_sql.add_argument("query")
    p_sql.add_argument("--db", required=True)
    p_sql.set_defaults(func=cmd_sql)

    p_serve = sub.add_parser(
        "serve",
        help="serve queries over the NDJSON protocol (stdio or TCP)",
    )
    p_serve.add_argument(
        "--stdio", action="store_true",
        help="serve stdin/stdout as one NDJSON stream (exit 0 at EOF)",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="TCP bind host")
    p_serve.add_argument("--port", type=int, default=7455,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="worker pool size")
    p_serve.add_argument("--queue-size", type=int, default=64,
                         dest="queue_size",
                         help="bounded admission queue length")
    p_serve.add_argument("--backpressure", choices=["reject", "block"],
                         default="reject",
                         help="full-queue policy: fail fast or block submitters")
    p_serve.add_argument("--default-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="deadline for requests that set none")
    p_serve.add_argument("--shards", type=int, default=0, metavar="N",
                         help="partition registered databases across N "
                              "shard worker processes (0 = off)")
    p_serve.add_argument("--shard-scheme", choices=["hash", "relation"],
                         default="hash", dest="shard_scheme",
                         help="partitioning scheme for --shards")
    p_serve.add_argument("--db", action="append", default=[],
                         metavar="NAME=FILE",
                         help="register a database at startup (repeatable)")
    p_serve.add_argument("--warm-dir", default=None, dest="warm_dir",
                         metavar="DIR",
                         help="persist compiled automata here on shutdown "
                              "and lazily warm-start from it on boot")
    p_serve.add_argument("--quota-rate", type=float, default=None,
                         dest="quota_rate", metavar="RPS",
                         help="per-client token-bucket refill rate in "
                              "requests/second (default: no quota)")
    p_serve.add_argument("--quota-burst", type=float, default=8.0,
                         dest="quota_burst", metavar="N",
                         help="per-client token-bucket capacity")
    p_serve.set_defaults(func=cmd_serve)

    p_lang = sub.add_parser(
        "language", help="analyze the language a unary query defines"
    )
    common(p_lang, with_db=False)
    p_lang.add_argument("--alphabet", default="01")
    p_lang.set_defaults(func=cmd_language)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except EvaluationTimeout as exc:
        print(f"timeout: {exc}", file=sys.stderr)
        return 3
    except UnsafeQueryError as exc:
        print(f"error: {exc} (use --limit to sample, or `safety` to inspect)",
              file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. `... | head`); exit quietly like a
        # well-behaved unix tool instead of dumping a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
