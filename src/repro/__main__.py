"""Command-line interface: run string-calculus queries against JSON databases.

Usage::

    python -m repro run "R(x) & last(x, '0')" --db db.json
    python -m repro run "el(x, y)" --db db.json --structure S_len --limit 5
    python -m repro safety "last(x, '0')" --db db.json
    python -m repro sql "SELECT r.1 FROM R r WHERE r.1 LIKE '0%'" --db db.json
    python -m repro language "matches(x, '(00)*')" --structure S_reg

Database JSON format::

    {"alphabet": "01", "relations": {"R": [["0110"], ["001"]]}}
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import Query, StringDatabase
from repro.core.query import definable_language, language_is_star_free
from repro.errors import ReproError, UnsafeQueryError
from repro.eval import DirectEngine
from repro.sql import translate_select
from repro.structures import by_name
from repro.strings import Alphabet


def load_database(path: str) -> StringDatabase:
    with open(path) as f:
        spec = json.load(f)
    relations = {
        name: [tuple(row) for row in rows]
        for name, rows in spec.get("relations", {}).items()
    }
    return StringDatabase(spec.get("alphabet", "01"), relations)


def cmd_run(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    q = Query(args.query, structure=args.structure, alphabet=db.alphabet)
    table = q.run(db, engine=args.engine, limit=args.limit)
    print("\t".join(table.columns))
    for row in table:
        print("\t".join(row))
    return 0


def cmd_safety(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    q = Query(args.query, structure=args.structure, alphabet=db.alphabet)
    report = q.safety_report(db)
    if report.safe:
        print(f"SAFE: finite output with {report.output_size} tuples")
    else:
        sample = [t for t in report.result.tuples(limit=3)]
        print(f"UNSAFE: infinite output; sample {sample}")
    return 0


def cmd_sql(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    translated = translate_select(args.query, db.schema)
    print(f"-- calculus ({translated.structure_name}): {translated.formula}",
          file=sys.stderr)
    structure = by_name(translated.structure_name, db.alphabet)
    result = DirectEngine(structure, db.db).run(translated.formula)
    mapping = {v: i for i, v in enumerate(result.variables)}
    print("\t".join(translated.output_variables))
    for row in sorted(result.as_set()):
        print("\t".join(row[mapping[v]] for v in translated.output_variables))
    return 0


def cmd_language(args: argparse.Namespace) -> int:
    alphabet = Alphabet(args.alphabet)
    q = Query(args.query, structure=args.structure, alphabet=alphabet)
    dfa = definable_language(q)
    star_free = language_is_star_free(q)
    print(f"minimal DFA: {dfa.num_states} states")
    print(f"star-free: {star_free}")
    print(f"finite: {dfa.is_finite_language()}")
    sample = list(dfa.iter_strings(max_length=4))[:10]
    print(f"sample (len<=4): {sample}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="String-calculus queries (PODS 2001 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, with_db=True):
        p.add_argument("query")
        if with_db:
            p.add_argument("--db", required=True, help="JSON database file")
        p.add_argument(
            "--structure",
            default="S",
            choices=["S", "S_left", "S_reg", "S_len", "S_insert"],
        )

    p_run = sub.add_parser("run", help="evaluate a calculus query")
    common(p_run)
    p_run.add_argument("--engine", default="automata", choices=["automata", "direct"])
    p_run.add_argument("--limit", type=int, default=None,
                       help="sample size for infinite outputs")
    p_run.set_defaults(func=cmd_run)

    p_safety = sub.add_parser("safety", help="decide state-safety (Prop 7)")
    common(p_safety)
    p_safety.set_defaults(func=cmd_safety)

    p_sql = sub.add_parser("sql", help="run a mini-SQL SELECT")
    p_sql.add_argument("query")
    p_sql.add_argument("--db", required=True)
    p_sql.set_defaults(func=cmd_sql)

    p_lang = sub.add_parser(
        "language", help="analyze the language a unary query defines"
    )
    common(p_lang, with_db=False)
    p_lang.add_argument("--alphabet", default="01")
    p_lang.set_defaults(func=cmd_language)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnsafeQueryError as exc:
        print(f"error: {exc} (use --limit to sample, or `safety` to inspect)",
              file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
