"""Quickstart: the string calculi in five minutes.

Run with::

    python examples/quickstart.py

Covers: building a database, the paper's Section 2 query, the four
languages and their signatures, safety, and the algebra compiler.
"""

from repro import Query, StringDatabase, UnsafeQueryError


def main() -> None:
    # A database over the binary alphabet: one unary and one binary relation.
    db = StringDatabase(
        "01",
        {
            "R": {"0110", "001", "11", "010"},
            "E": {("0", "01"), ("01", "010"), ("11", "0110")},
        },
    )
    print(f"database: {db}")
    print(f"active domain: {sorted(db.adom)}")
    print(f"width (longest prefix chain in adom): {db.width()}")
    print()

    # ---- The paper's Section 2 example: strings in R ending with "10".
    q = Query("R(x) & last(x, '0') & exists y: ext1(y, x) & last(y, '1')")
    print(f"query: {q}")
    print(f"strings in R ending with 10: {q.run(db).rows()}")
    print()

    # ---- Composition: prefixes of R-strings (output goes beyond adom!).
    prefixes = Query("exists adom y: R(y) & x <<= y")
    print(f"all prefixes of R-strings: {prefixes.run(db).rows()}")
    print()

    # ---- SQL LIKE is star-free, hence RC(S):
    like = Query('R(x) & matches(x, "0(0|1)*")')  # LIKE '0%'
    print(f"R-strings LIKE '0%': {like.run(db).rows()}")

    # ---- SIMILAR-style regular patterns need RC(S_reg):
    similar = Query('R(x) & matches(x, "(01)*0?")', structure="S_reg")
    print(f"R-strings SIMILAR TO '(01)*0?': {similar.run(db).rows()}")

    # ---- Length comparison needs RC(S_len):
    equal_len = Query(
        "R(x) & R(y) & el(x, y) & !eq(x, y)", structure="S_len"
    )
    print(f"distinct equal-length pairs in R: {equal_len.run(db).rows()}")
    print()

    # ---- SELECT a.x FROM R: inexpressible in RC(S), easy in RC(S_left).
    prepend = Query(
        "exists adom x: R(x) & eq(add_first(x, '1'), y)", structure="S_left"
    )
    print(f"SELECT '1'.x FROM R: {prepend.run(db).rows()}")
    print()

    # ---- Safety: finite vs infinite outputs (Proposition 7 decides it).
    unsafe = Query("last(x, '0')")
    print(f"is `last(x, '0')` safe on db? {unsafe.is_safe_on(db)}")
    try:
        unsafe.run(db)
    except UnsafeQueryError as exc:
        print(f"materializing it raises: {exc}")
    print(f"but we can sample the (regular) output: {unsafe.run(db, limit=5).rows()}")
    print()

    # ---- Compile a safe query to the relational algebra RA(S) (Theorem 4).
    compiled = q.to_algebra(db.schema)
    print("compiled RA(S) plan:")
    print(f"  {compiled.plan}")
    print(f"  evaluates to: {sorted(compiled.evaluate(db.db))}")


if __name__ == "__main__":
    main()
