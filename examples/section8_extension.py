"""The paper's Section 8 future work, implemented: S_insert.

"It would be interesting to study an extension of RC(S) in the spirit of
RC(S_left) by allowing inserting characters at arbitrary position in a
string x, specified by a prefix of x."  — the paper's closing sentence.

This example uses the extension on a versioned-key scenario: keys gain a
marker bit right after their (variable-length) namespace prefix.

Run with::

    python examples/section8_extension.py
"""

from repro import Query, StringDatabase
from repro.theory import decide


def main() -> None:
    # Keys: namespace (ending in the first '1') then payload.
    db = StringDatabase(
        "01",
        {
            "KEY": {"0100", "001011", "110"},
            "NS": {"01", "001", "11"},  # known namespace prefixes
        },
    )
    print(f"keys: {sorted(s for (s,) in db.db.relation('KEY'))}")
    print(f"namespaces: {sorted(s for (s,) in db.db.relation('NS'))}")
    print()

    # Insert a '1' marker right after each key's namespace prefix.
    q = Query(
        "exists adom k: exists adom n: KEY(k) & NS(n) & n <<= k & "
        "eq(insert_at(k, n, '1'), y)",
        structure="S_insert",
    )
    print("keys with a '1' marker inserted after their namespace:")
    for (marked,) in q.run(db).rows():
        print(f"  {marked}")
    print()

    # The extension subsumes S_left's vocabulary:
    print("insert_at(x, eps, 'a') = add_first; insert_at(x, x, 'a') = add_last:")
    print(
        "  both-equal sentence holds:",
        decide(
            "forall x: forall y: "
            "(eq(insert_at(x, eps, '1'), y) <-> eq(add_first(x, '1'), y))",
            structure="S_insert",
        ),
    )
    print(
        "  append case holds:",
        decide(
            "forall x: forall y: "
            "(eq(insert_at(x, x, '0'), y) <-> eq(add_last(x, '0'), y))",
            structure="S_insert",
        ),
    )
    print()
    print("The graph of insert_a is synchronized-rational, so the exact")
    print("automata engine covers S_insert; the collapse/safety analogues of")
    print("Theorems 6-8 remain open, as the paper left them.")


if __name__ == "__main__":
    main()
