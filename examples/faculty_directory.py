"""The paper's motivating SQL scenario: a faculty directory.

The introduction opens with ``FACULTY.NAME LIKE 'Ny%'``-style clauses and
argues SQL restricts how string matching composes with relational algebra.
This example runs the mini-SQL front end over a faculty/department
database, shows each query's translation into the calculi, and exercises
the compositionality SQL lacks.

Names are encoded over the alphabet a-z (lowercased).

Run with::

    python examples/faculty_directory.py
"""

from repro import Alphabet, StringDatabase
from repro.core import Query
from repro.eval import DirectEngine
from repro.sql import translate_select
from repro.structures import by_name

LETTERS = Alphabet("abcdefghijklmnopqrstuvwxyz")

FACULTY = {
    ("nygaard", "cs"),
    ("nyquist", "ee"),
    ("naur", "cs"),
    ("lovelace", "math"),
    ("noether", "math"),
    ("nyberg", "cs"),
}
DEPT = {("cs", "turinghall"), ("ee", "maxwellwing"), ("math", "gausshall")}


def run_sql(db: StringDatabase, sql: str) -> None:
    print(f"SQL>  {sql}")
    translated = translate_select(sql, db.schema)
    print(f"  calculus ({translated.structure_name}): {translated.formula}")
    structure = by_name(translated.structure_name, db.alphabet)
    # Over a 26-letter alphabet the convolution engine's column alphabets
    # get huge; translated SELECTs are already collapsed (ADOM quantifiers),
    # so the polynomial direct engine is the right tool.
    result = DirectEngine(structure, db.db).run(translated.formula)
    mapping = {v: i for i, v in enumerate(result.variables)}
    rows = sorted(
        tuple(row[mapping[v]] for v in translated.output_variables)
        for row in result.as_set()
    )
    for row in rows:
        print(f"    {row}")
    print()


def main() -> None:
    db = StringDatabase(LETTERS, {"FACULTY": FACULTY, "DEPT": DEPT})

    # The paper's own example clause.
    run_sql(db, "SELECT f.1 FROM FACULTY f WHERE f.1 LIKE 'ny%'")

    # Join with a LIKE filter on the joined table.
    run_sql(
        db,
        "SELECT f.1, d.2 FROM FACULTY f, DEPT d "
        "WHERE f.2 = d.1 AND d.2 LIKE '%hall'",
    )

    # SIMILAR TO needs regular power -> the translator reports S_reg.
    run_sql(
        db,
        "SELECT f.1 FROM FACULTY f WHERE f.1 SIMILAR TO 'n(y|a)%(d|r|g)'",
    )

    # LENGTH comparisons -> S_len.
    run_sql(
        db,
        "SELECT f.1, g.1 FROM FACULTY f, FACULTY g "
        "WHERE LENGTH(f.1) = LENGTH(g.1) AND f.1 < g.1",
    )

    # What SQL cannot do but the calculus can: compose the *output* of a
    # LIKE query with new string operations -- here, all strict prefixes of
    # the 'ny%' names that are at least 2 letters (a query over the answer
    # of another query, in one formula).
    q = Query(
        "exists adom n: exists adom d: FACULTY(n, d) & matches(n, 'ny.*') "
        "& x << n & exists u: exists v: ext1(u, v) & ext1(v, x)",
        structure="S",
        alphabet=LETTERS,
    )
    print("compositional calculus query (prefixes of 'ny%' names, len >= 2):")
    for row in q.run(db, engine="direct", slack=0).rows():
        print(f"    {row}")


if __name__ == "__main__":
    main()
