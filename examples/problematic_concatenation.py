"""Section 3, live: why concatenation breaks the theory.

* Proposition 1: RC_concat expresses every computable query.  We encode a
  Turing machine's accepting computations as strings and *check the
  logical formula* against genuine and corrupted histories.
* Corollary 1: state-safety is undecidable.  We build the PCP reduction
  and watch the bounded tools do the best that is possible.

Run with::

    python examples/problematic_concatenation.py
"""

from repro import Alphabet
from repro.concat import (
    BoundedConcatEngine,
    PcpInstance,
    acceptance_formula,
    accepts_via_formula,
    encode_history,
    encode_solution,
    is_witness,
    parity_machine,
    solve_pcp,
    witness_formula,
)


def main() -> None:
    print("== Proposition 1: a TM inside RC_concat ==")
    tm = parity_machine()
    alphabet = Alphabet("01BeoA$")
    print("machine: accepts binary strings with an even number of 1s")
    print("(parity is NOT expressible in RC(S) -- Corollary 2 -- but any")
    print(" computable query fits in RC_concat)")
    for tape in ["0110", "11", "1"]:
        history = tm.run(tape)
        if history is None:
            print(f"  input {tape!r}: machine rejects (no accepting history)")
            continue
        encoded = encode_history(history)
        ok = accepts_via_formula(tm, tape, encoded, alphabet)
        print(f"  input {tape!r}: history {encoded}")
        print(f"    formula accepts the genuine history: {ok}")
        corrupted = encoded.replace("A", "o")
        print(
            f"    formula rejects a corrupted history:  "
            f"{not accepts_via_formula(tm, tape, corrupted, alphabet)}"
        )
    print()

    print("== Corollary 1: PCP -> state-safety ==")
    instance = PcpInstance((("1", "111"), ("10111", "10"), ("10", "0")))
    print(f"classic PCP instance: {instance.pairs}")
    solution = solve_pcp(instance, max_length=30)
    print(f"BFS search finds solution indices: {solution}")
    witness = encode_solution(instance, solution)
    print(f"witness string: {witness}")
    print(f"direct validation: {is_witness(instance, witness)}")
    engine = BoundedConcatEngine(Alphabet("01$%"), mode="factors")
    formula = witness_formula(instance)
    print(f"RC_concat witness formula holds: "
          f"{engine.holds(formula, {'x': witness})}")
    print(f"...and rejects a corrupted witness: "
          f"{not engine.holds(formula, {'x': witness[:-2] + '1$'})}")
    print()
    print("The query psi(y) = y = y & exists x: witness(x) is unsafe exactly")
    print("when the instance is solvable -- so deciding state-safety for")
    print("RC_concat would decide PCP. No effective syntax, no safe algebra,")
    print("no terminating engine: the reason the paper replaces concatenation")
    print("with the tame structures S, S_left, S_reg, S_len.")


if __name__ == "__main__":
    main()
