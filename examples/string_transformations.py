"""The intermediate calculi at work: RC(S_left) and RC(S_reg) (Section 7).

RC(S) cannot prepend characters (``SELECT a.x FROM R`` is inexpressible)
and cannot do full regular matching; RC(S_len) can do both but at
polynomial-hierarchy cost.  The paper's answer: two *tame* extensions.
This example uses both on a log-normalization scenario: record IDs that
must be re-tagged on the left (S_left) and validated against a regular
format (S_reg).

Run with::

    python examples/string_transformations.py
"""

from repro import Query, StringDatabase, language_is_star_free
from repro.algebra import AddFirstOp, BaseRel, Project, Select, TrimFirstOp, col
from repro.logic.dsl import matches
from repro.structures import S_left, S_reg
from repro.strings import BINARY


def main() -> None:
    # Record IDs: version bit then payload. 0-prefixed = legacy format.
    db = StringDatabase(
        "01",
        {"IDS": {"0110", "0011", "1110", "1001", "010"}},
    )
    print(f"record ids: {sorted(s for (s,) in db.db.relation('IDS'))}")
    print()

    # ---- RC(S_left): strip the legacy '0' tag and re-tag with '1'.
    migrate = Query(
        "exists adom x: IDS(x) & eq(add_first(trim_first(x, '0'), '1'), y)",
        structure="S_left",
    )
    print("migrated ids (strip leading '0', prepend '1') via RC(S_left):")
    print(f"  {migrate.run(db).rows()}")
    print()

    # The same computation as an RA(S_left) plan (Theorem 8's algebra).
    plan = Project(
        AddFirstOp(TrimFirstOp(BaseRel("IDS", 1), 0, "0"), 1, "1"),
        (2,),
    )
    rows = plan.evaluate(db.db, S_left(BINARY))
    print(f"same as an RA(S_left) plan: {plan}")
    print(f"  {sorted(rows)}")
    print()

    # ---- RC(S_reg): validate against a regular format -- even-length
    # payload blocks, a non-star-free condition LIKE can never express.
    validate = Query(
        'IDS(x) & matches(x, "(0|1)((0|1)(0|1))*")',  # odd total length
        structure="S_reg",
    )
    print("ids with odd length (tag + even payload) via RC(S_reg):")
    print(f"  {validate.run(db).rows()}")
    print()

    # The definable-language dichotomy (Sections 4 and 7):
    like_style = Query('matches(x, "0(0|1)*")', structure="S")
    regular_only = Query('matches(x, "(00)*")', structure="S_reg")
    print("definable-language classes:")
    print(f"  LIKE-style '0%': star-free? {language_is_star_free(like_style)}")
    print(f"  (00)*:           star-free? {language_is_star_free(regular_only)}")
    print("  -> (00)* separates RC(S_reg) from RC(S) and RC(S_left) (Figure 1)")


if __name__ == "__main__":
    main()
