"""Tour of the safety machinery (paper Section 6).

* state-safety (Proposition 7): is this query's output finite *here*?
* range restriction (Theorem 3): a safe query equivalent on safe inputs;
* conjunctive-query safety (Corollary 6): finite on *every* database?
* effective syntax (Corollary 5): enumerating safe queries;
* the RC_concat contrast (Corollary 1): safety undecidable.

Run with::

    python examples/safety_analysis.py
"""

from repro import Query, StringDatabase, UndecidableError
from repro.concat import PcpInstance, decide_state_safety, safety_reduction, solve_pcp
from repro.database import Database
from repro.logic.dsl import prefix, rel
from repro.logic.formulas import TrueF
from repro.logic.terms import Var
from repro.safety import ConjunctiveQuery, cq_is_safe, enumerate_safe_queries
from repro.strings import BINARY
from repro.structures import S


def main() -> None:
    db = StringDatabase("01", {"R": {"0110", "001"}, "S": {"0"}})

    print("== State-safety (Proposition 7) ==")
    for text in [
        "R(x)",
        "exists adom y: x <<= y",  # prefixes: safe
        "last(x, '0')",  # all strings ending in 0: unsafe
        "!R(x)",  # complement: unsafe
        "exists y: R(y) & el(x, y)",  # S_len, safe but exponential-ish
    ]:
        structure = "S_len" if "el(" in text else "S"
        q = Query(text, structure=structure)
        report = q.safety_report(db)
        size = report.output_size if report.safe else "infinite"
        print(f"  {text!r:45s} safe={report.safe!s:5s} |output|={size}")
    print()

    print("== Range restriction (Theorem 3) ==")
    q = Query("exists adom y: x <<= y")
    rr = q.range_restricted(slack=0)
    print(f"  query: {q}")
    print(f"  gamma-slack k = {rr.slack}")
    print(f"  (gamma, phi)(D) = {sorted(rr.evaluate(db.db))}")
    print(f"  agrees with phi on this (safe) instance: "
          f"{rr.agrees_with_original_on(db.db)}")
    unsafe = Query("last(x, '0')").range_restricted(slack=1)
    print(f"  unsafe query's range-restricted output (finite by construction):")
    print(f"    {sorted(unsafe.evaluate(db.db))}")
    print()

    print("== Conjunctive-query safety over ALL databases (Corollary 6) ==")
    examples = [
        ("Q(x) :- R(x)", ConjunctiveQuery(("x",), (rel("R", "x"),), TrueF())),
        (
            "Q(x) :- R(y), x <<= y",
            ConjunctiveQuery(("x",), (rel("R", "y"),), prefix(Var("x"), Var("y")), ("y",)),
        ),
        (
            "Q(x) :- R(y), y <<= x",
            ConjunctiveQuery(("x",), (rel("R", "y"),), prefix(Var("y"), Var("x")), ("y",)),
        ),
    ]
    for text, cq in examples:
        print(f"  {text:30s} safe-for-all-D = {cq_is_safe(cq, S(BINARY))}")
    print()

    print("== Effective syntax (Corollary 5): first safe queries ==")
    for i, safe_q in enumerate(enumerate_safe_queries(S(BINARY), db.schema, limit=6)):
        print(f"  #{i}: gamma_k with k={safe_q.slack}, phi = {safe_q.formula}")
    print()

    print("== The RC_concat contrast (Corollary 1) ==")
    instance = PcpInstance((("1", "111"), ("10111", "10"), ("10", "0")))
    psi = safety_reduction(instance)
    print(f"  PCP reduction query: psi(y) = {str(psi)[:70]}...")
    try:
        decide_state_safety(psi, Database(BINARY, {}))
    except UndecidableError as exc:
        print(f"  decide_state_safety raises: {exc}")
    solution = solve_pcp(instance, max_length=20)
    print(f"  BFS semi-decision finds the classic solution: {solution}")
    print("  -> psi is UNSAFE for this instance (output = Sigma*)")


if __name__ == "__main__":
    main()
