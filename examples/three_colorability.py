"""Proposition 5 in action: graph 3-colorability as an RC(S_len) query.

The paper: RC(S_len) expresses all MSO queries over bounded-width
databases — so it contains NP-complete queries, and evaluating them costs
the exponential LENGTH-domain enumeration that Theorem 2 proves
unavoidable.  This example encodes graphs as width-1 string databases,
runs the 3-colorability sentence, and compares against brute force.

Run with::

    python examples/three_colorability.py
"""

import time

from repro.database import (
    complete_graph,
    cycle_graph,
    graph_database,
    random_graph,
)
from repro.mso import (
    is_three_colorable_bruteforce,
    is_three_colorable_via_rc_slen,
    three_colorability_sentence,
)
from repro.strings import BINARY


def main() -> None:
    print("The RC(S_len) 3-colorability sentence:")
    sentence = str(three_colorability_sentence())
    print(f"  {sentence[:100]}...")
    print(f"  ({len(sentence)} characters; three length-restricted color strings)")
    print()

    cases = [
        ("triangle K3", 3, complete_graph(3)),
        ("K4", 4, complete_graph(4)),
        ("4-cycle", 4, cycle_graph(4)),
        ("5-cycle", 5, cycle_graph(5)),
        ("random(5, p=0.5)", 5, random_graph(5, 0.5, seed=1)),
    ]
    print(f"{'graph':20s} {'vertices':>8s} {'3-col?':>7s} {'RC(S_len) time':>15s}")
    for name, n, edges in cases:
        db = graph_database(n, edges, BINARY)
        assert db.width() == 1  # the Prop 5 width bound
        t0 = time.perf_counter()
        got = is_three_colorable_via_rc_slen(db)
        elapsed = time.perf_counter() - t0
        expected = is_three_colorable_bruteforce(n, edges)
        assert got == expected
        print(f"{name:20s} {n:8d} {str(got):>7s} {elapsed:13.3f}s")
    print()
    print("Note how the RC(S_len) time explodes with the vertex count while")
    print("brute force stays trivial: the query quantifies color strings")
    print("over the LENGTH domain (all of Sigma^{<=n}), which is exactly the")
    print("exponential 'down' operator cost the paper calls unavoidable.")


if __name__ == "__main__":
    main()
